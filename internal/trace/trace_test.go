package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

func TestPCPacking(t *testing.T) {
	pc := MakePC(0x1234, 0x5678)
	if FuncOfPC(pc) != 0x1234 {
		t.Errorf("FuncOfPC = %#x", FuncOfPC(pc))
	}
	if OffOfPC(pc) != 0x5678 {
		t.Errorf("OffOfPC = %#x", OffOfPC(pc))
	}
}

func TestPCPackingProperty(t *testing.T) {
	f := func(fn uint16, off uint16) bool {
		pc := MakePC(FuncID(fn), off)
		return FuncOfPC(pc) == FuncID(fn) && OffOfPC(pc) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New()
	f1, err := tr.AddFunc("v8::Compile", "v8")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := tr.AddFunc("blink::Layout", "blink/layout")
	if err != nil {
		t.Fatal(err)
	}
	tr.Threads = append(tr.Threads, ThreadInfo{0, "CrRendererMain"}, ThreadInfo{1, "Compositor"})
	tr.Recs = []Rec{
		{PC: MakePC(f1, 1), Kind: isa.KindConst, Dst: 1, TID: 0},
		{PC: MakePC(f1, 2), Kind: isa.KindStore, Src1: 1, Addr: 0x1000, Size: 4, TID: 0},
		{PC: MakePC(f2, 1), Kind: isa.KindLoad, Dst: 2, Addr: 0x1000, Size: 4, TID: 1},
		{PC: MakePC(f2, 2), Kind: isa.KindSyscall, Dst: 3, Src1: 2, Aux: uint32(isa.SysSendto), TID: 1},
		{PC: MakePC(f2, 3), Kind: isa.KindMarker, Aux: 1, TID: 1},
	}
	tr.Sys[3] = &SysEffect{Num: isa.SysSendto, Reads: []vmem.Range{{Addr: 0x1000, Size: 4}}}
	tr.Marks[4] = &Mark{ID: 1, Kind: isa.MarkPixels, Buf: vmem.Range{Addr: 0x4000_0000, Size: 256}}
	tr.Clock = []ClockPoint{{0, 0}, {3, 100}}
	return tr
}

func TestValidateOK(t *testing.T) {
	tr := sampleTrace(t)
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesBadSideTables(t *testing.T) {
	tr := sampleTrace(t)
	tr.Sys[0] = &SysEffect{} // rec 0 is not a syscall
	if err := tr.Validate(); err == nil {
		t.Error("expected error for misplaced syscall entry")
	}
	delete(tr.Sys, 0)
	tr.Marks[99] = &Mark{}
	if err := tr.Validate(); err == nil {
		t.Error("expected error for out-of-range marker index")
	}
	delete(tr.Marks, 99)
	tr.Recs[0].Kind = isa.Kind(99)
	if err := tr.Validate(); err == nil {
		t.Error("expected error for invalid kind")
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace(t)
	s := tr.Summarize()
	if s.Total != 5 || s.Syscalls != 1 || s.Markers != 1 || s.Functions != 2 || s.Threads != 2 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if s.ByThread[0] != 2 || s.ByThread[1] != 3 {
		t.Errorf("by-thread counts: %+v", s.ByThread)
	}
	if s.ByKind[isa.KindMarker] != 1 {
		t.Errorf("by-kind counts: %+v", s.ByKind)
	}
}

func TestNames(t *testing.T) {
	tr := sampleTrace(t)
	if tr.FuncName(1) != "v8::Compile" || tr.Namespace(1) != "v8" {
		t.Error("symbol lookup wrong")
	}
	if tr.FuncName(999) == "" || tr.Namespace(999) != "" {
		t.Error("out-of-range lookup should degrade gracefully")
	}
	if tr.ThreadName(0) != "CrRendererMain" {
		t.Errorf("ThreadName(0) = %q", tr.ThreadName(0))
	}
	if tr.ThreadName(42) == "" {
		t.Error("unknown thread should still print")
	}
}

func TestCycleAtInterpolation(t *testing.T) {
	tr := sampleTrace(t)
	// Checkpoints {0,0} and {3,100}: records 0..2 are cycles 0..2,
	// record 3 is cycle 100, record 4 is cycle 101.
	for i, want := range []uint64{0, 1, 2, 100, 101} {
		if got := tr.CycleAt(i); got != want {
			t.Errorf("CycleAt(%d) = %d, want %d", i, got, want)
		}
	}
	if got := tr.EndCycle(); got != 102 {
		t.Errorf("EndCycle = %d, want 102", got)
	}
	empty := New()
	if empty.EndCycle() != 0 {
		t.Error("empty trace should have EndCycle 0")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recs, tr.Recs) {
		t.Errorf("records differ:\n got %+v\nwant %+v", got.Recs, tr.Recs)
	}
	if !reflect.DeepEqual(got.Funcs, tr.Funcs) {
		t.Errorf("symbols differ: %+v vs %+v", got.Funcs, tr.Funcs)
	}
	if !reflect.DeepEqual(got.Threads, tr.Threads) {
		t.Errorf("threads differ")
	}
	if !reflect.DeepEqual(got.Sys, tr.Sys) {
		t.Errorf("syscall side tables differ: %+v vs %+v", got.Sys, tr.Sys)
	}
	if !reflect.DeepEqual(got.Marks, tr.Marks) {
		t.Errorf("marker side tables differ")
	}
	if !reflect.DeepEqual(got.Clock, tr.Clock) {
		t.Errorf("clock differs")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("expected magic error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected EOF error")
	}
}

func TestDecodeErrorCarriesSectionAndOffset(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload (before the trailer) and strip the version down to
	// 1 so the missing checksum isn't what trips first.
	enc := buf.Bytes()
	v1 := append([]byte(nil), enc[:len(enc)/2]...)
	v1[4] = 1
	_, err := Read(bytes.NewReader(v1))
	if err == nil {
		t.Fatal("truncated v1 trace decoded")
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T, want *DecodeError: %v", err, err)
	}
	if de.Section == "" || de.Offset <= 0 || de.Offset > len(v1) {
		t.Errorf("decode error names section %q offset %d (payload %d bytes)", de.Section, de.Offset, len(v1))
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Append junk as version 1 (no checksum to catch it): the decoder itself
	// must notice the leftover bytes rather than silently ignoring them.
	enc := buf.Bytes()
	v1 := append([]byte(nil), enc[:len(enc)-trailerSize]...)
	v1[4] = 1
	v1 = append(v1, 0xde, 0xad, 0xbe, 0xef)
	_, err := Read(bytes.NewReader(v1))
	if err == nil {
		t.Fatal("trace with trailing garbage decoded")
	}
	var de *DecodeError
	if !errors.As(err, &de) || !strings.Contains(de.Msg, "trailing") {
		t.Errorf("unexpected error for trailing bytes: %v", err)
	}
}

func TestEncodeDecodePropertyRecs(t *testing.T) {
	// Property: arbitrary (valid-kind) record streams survive a round trip.
	f := func(seed []byte) bool {
		tr := New()
		fn, _ := tr.AddFunc("f", "ns")
		for i, b := range seed {
			tr.Recs = append(tr.Recs, Rec{
				PC:   MakePC(fn, uint16(b)),
				Kind: isa.Kind(b % 10),
				TID:  b % 3,
				Dst:  isa.Reg(i),
				Src1: isa.Reg(b),
				Addr: vmem.Addr(uint32(b) << 8),
				Aux:  uint32(i * 7),
				Size: uint16(b % 65),
			})
		}
		// Side tables must match record kinds for Validate, but encoding
		// does not require validity; skip side tables here.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Recs, tr.Recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddFuncOverflow(t *testing.T) {
	tr := New()
	for i := 1; i < MaxFuncs; i++ {
		if _, err := tr.AddFunc("f", ""); err != nil {
			t.Fatalf("AddFunc failed early at %d: %v", i, err)
		}
	}
	if _, err := tr.AddFunc("one too many", ""); err == nil {
		t.Error("expected symbol table overflow error")
	}
}
