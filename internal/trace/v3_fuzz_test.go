package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// recsFromSeed deterministically expands fuzz bytes into a record stream,
// covering every column's interesting ranges (kind/thread runs, PC deltas in
// both directions, zero and large registers, clustered and scattered
// addresses, repeated sizes).
func recsFromSeed(seed []byte) []Rec {
	recs := make([]Rec, 0, len(seed))
	var pc uint32
	for i, b := range seed {
		pc += uint32(int8(b)) // signed wander, exercises negative deltas
		recs = append(recs, Rec{
			PC:   pc,
			Kind: isa.Kind(b % 11),
			TID:  b % 5,
			Dst:  isa.Reg(uint32(b) << (uint(i) % 24)),
			Src1: isa.Reg(b % 7),
			Src2: isa.Reg(i),
			Addr: vmem.Addr(uint32(i*int(b)) * 16),
			Aux:  uint32(b) * 0x01010101,
			Size: uint16(b) % 4097,
		})
	}
	return recs
}

// FuzzV3RoundTrip: arbitrary record streams survive a v3 encode/decode
// round trip exactly, across block sizes including ones that leave partial
// final blocks, and the v3→v2 transcode matches the direct v2 encoding
// byte for byte.
func FuzzV3RoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(64))
	f.Add([]byte{1, 2, 3}, uint16(64))
	f.Add(bytes.Repeat([]byte{7, 7, 9}, 100), uint16(64))
	f.Add([]byte{0xFF, 0x00, 0x80, 0x7F}, uint16(128))
	f.Fuzz(func(t *testing.T, seed []byte, blockRecs uint16) {
		if len(seed) > 4096 {
			seed = seed[:4096]
		}
		tr := New()
		fn, _ := tr.AddFunc("f", "ns")
		_ = fn
		tr.Threads = append(tr.Threads, ThreadInfo{0, "main"})
		tr.Recs = recsFromSeed(seed)
		if len(tr.Recs) > 2 {
			tr.Recs[1].Kind = isa.KindSyscall
			tr.Sys[1] = &SysEffect{Num: isa.SysRead, Reads: []vmem.Range{{Addr: 0x10, Size: 2}}}
			tr.Recs[2].Kind = isa.KindMarker
			tr.Marks[2] = &Mark{ID: 9, Kind: isa.MarkPixels, Buf: vmem.Range{Addr: 0x99, Size: 7}}
			tr.Clock = []ClockPoint{{Index: 0, Cycle: 5}}
		}

		var v3 bytes.Buffer
		if err := tr.WriteV3Blocks(&v3, int(blockRecs)); err != nil {
			t.Fatalf("WriteV3Blocks: %v", err)
		}
		br, err := OpenV3(v3.Bytes())
		if err != nil {
			t.Fatalf("OpenV3 of our own encoding: %v", err)
		}
		got, err := br.ReadAll()
		if err != nil {
			t.Fatalf("ReadAll of our own encoding: %v", err)
		}
		if !reflect.DeepEqual(got.Recs, tr.Recs) && !(len(got.Recs) == 0 && len(tr.Recs) == 0) {
			t.Fatal("records did not survive the v3 round trip")
		}
		if !reflect.DeepEqual(got.Sys, tr.Sys) || !reflect.DeepEqual(got.Marks, tr.Marks) {
			t.Fatal("side tables did not survive the v3 round trip")
		}

		var direct, transcoded bytes.Buffer
		if err := tr.Write(&direct); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := br.WriteV2(&transcoded); err != nil {
			t.Fatalf("WriteV2 transcode: %v", err)
		}
		if !bytes.Equal(direct.Bytes(), transcoded.Bytes()) {
			t.Fatal("v3→v2 transcode differs from the direct v2 encoding")
		}
	})
}

// FuzzV3DecodeNeverPanics: arbitrary bytes — including mutated valid
// encodings reached by the fuzzer — must decode to a typed error or a valid
// trace, never a panic or unbounded allocation.
func FuzzV3DecodeNeverPanics(f *testing.F) {
	var empty, small bytes.Buffer
	_ = New().WriteV3(&empty)
	{
		tr := New()
		tr.Recs = recsFromSeed([]byte{1, 2, 3, 4, 5, 6, 7, 8})
		_ = tr.WriteV3Blocks(&small, 64)
	}
	f.Add([]byte{})
	f.Add([]byte("WSLT"))
	f.Add(empty.Bytes())
	f.Add(small.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := OpenV3(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("OpenV3 error is %T, want *DecodeError: %v", err, err)
			}
			return
		}
		if _, err := br.ReadAll(); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("ReadAll error is %T, want *DecodeError: %v", err, err)
			}
		}
		// The generic sniffing path must agree on accept/reject modulo the
		// already-verified open.
		if _, err := Read(bytes.NewReader(data)); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Read error is %T, want *DecodeError: %v", err, err)
			}
		}
	})
}
