package trace

import (
	"bytes"
	"strings"
	"testing"
)

// encodeSample returns the version-2 encoding of the shared sample trace.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleTrace(t).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readNeverPanics decodes data, converting a panic into a test failure.
// Corrupt input must come back as an error, not a crash.
func readNeverPanics(t *testing.T, data []byte, label string) error {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Read panicked: %v", label, r)
		}
	}()
	_, err := Read(bytes.NewReader(data))
	return err
}

func TestReadEveryTruncatedPrefixErrors(t *testing.T) {
	enc := encodeSample(t)
	for n := 0; n < len(enc); n++ {
		err := readNeverPanics(t, enc[:n], "prefix")
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(enc))
		}
	}
}

func TestReadEveryBitFlipErrors(t *testing.T) {
	enc := encodeSample(t)
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[i] ^= 1 << bit
			err := readNeverPanics(t, mut, "bitflip")
			if err == nil {
				t.Fatalf("flipping byte %d bit %d (of %d bytes) decoded without error — the checksum must catch every single-bit corruption", i, bit, len(enc))
			}
		}
	}
}

func TestReadCorruptCountsErrorDescriptively(t *testing.T) {
	// A version-1 file (no checksum) with a record count far beyond the
	// payload: the bounds check must reject it before allocating.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(1)                                // version 1
	buf.WriteByte(0)                                // no functions
	buf.WriteByte(0)                                // no threads
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // record count ~2^34
	err := readNeverPanics(t, buf.Bytes(), "hugecount")
	if err == nil {
		t.Fatal("absurd record count decoded without error")
	}
	if !strings.Contains(err.Error(), "record stream") {
		t.Errorf("error should name the failing section: %v", err)
	}
}

func TestReadRejectsOutOfRangeSideTables(t *testing.T) {
	// Build a v1 body whose syscall table points past the record stream.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(1) // version 1
	buf.WriteByte(0) // no functions
	buf.WriteByte(0) // no threads
	buf.WriteByte(0) // no records
	buf.WriteByte(1) // one syscall entry...
	buf.WriteByte(9) // ...claiming record index 9
	buf.WriteByte(1) // syscall num
	buf.WriteByte(0) // reads
	buf.WriteByte(0) // writes
	err := readNeverPanics(t, buf.Bytes(), "sysidx")
	if err == nil || !strings.Contains(err.Error(), "syscall") {
		t.Errorf("out-of-range syscall index must error with the section name, got: %v", err)
	}
}

func TestReadAcceptsVersion1WithoutTrailer(t *testing.T) {
	// Re-encode the sample as version 1 by patching the version byte and
	// dropping the trailer; the checksum is then not required.
	enc := encodeSample(t)
	v1 := bytes.Clone(enc[:len(enc)-trailerSize])
	if v1[4] != 2 {
		t.Fatalf("version byte = %d, expected 2", v1[4])
	}
	v1[4] = 1
	tr, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 decode: %v", err)
	}
	if len(tr.Recs) != len(sampleTrace(t).Recs) {
		t.Errorf("v1 decode lost records: %d", len(tr.Recs))
	}
}

func TestReadRejectsMissingTrailer(t *testing.T) {
	enc := encodeSample(t)
	err := readNeverPanics(t, enc[:len(enc)-trailerSize], "notrailer")
	if err == nil {
		t.Fatal("a v2 file without its trailer must not decode")
	}
}
