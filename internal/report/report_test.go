package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long-name", "22")
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "beta-long-name") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(45.4) != "45%" {
		t.Errorf("Pct = %q", Pct(45.4))
	}
	if Pct1(45.46) != "45.5%" {
		t.Errorf("Pct1 = %q", Pct1(45.46))
	}
	if MInstr(6_217_000_000/1000) != "6.22 M" && MInstr(6_217_000) != "6.22 M" {
		t.Errorf("MInstr = %q", MInstr(6_217_000))
	}
	if MInstr(150_000_000) != "150 M" {
		t.Errorf("MInstr big = %q", MInstr(150_000_000))
	}
	if KB(955*1024) != "955.0 KB" {
		t.Errorf("KB = %q", KB(955*1024))
	}
	if KB(1<<20+600*1024) != "1.6 MB" {
		t.Errorf("MB = %q", KB(1<<20+600*1024))
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:   "Utilization",
		Height:  8,
		Width:   40,
		SeriesA: []float64{0, 25, 50, 75, 100, 75, 50, 25, 0},
		SeriesB: []float64{100, 50, 0},
		ALegend: "all",
		BLegend: "main",
	}
	out := c.String()
	if !strings.Contains(out, "Utilization") || !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart incomplete:\n%s", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Errorf("chart missing axis labels:\n%s", out)
	}
}

func TestChartClampsOutOfRange(t *testing.T) {
	c := &Chart{SeriesA: []float64{-10, 150}}
	out := c.String()
	if out == "" {
		t.Fatal("empty chart")
	}
}

func TestEmptyChartAndTable(t *testing.T) {
	if (&Chart{}).String() == "" {
		t.Error("empty chart should still render a frame")
	}
	tab := &Table{Headers: []string{"a"}}
	if tab.String() == "" {
		t.Error("empty table should render headers")
	}
}
