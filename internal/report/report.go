// Package report renders the experiment outputs as aligned text tables and
// ASCII charts, matching the rows and series the paper's tables and figures
// present.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Pct formats a percentage with no decimals, like the paper's tables.
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", v) }

// Pct1 formats a percentage with one decimal.
func Pct1(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// MInstr formats an instruction count in millions, like Table II's "6,217 M".
func MInstr(n int) string {
	m := float64(n) / 1e6
	if m >= 100 {
		return fmt.Sprintf("%.0f M", m)
	}
	return fmt.Sprintf("%.2f M", m)
}

// KB formats a byte count like Table I ("955 KB", "1.6 MB").
func KB(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1f KB", float64(n)/1024)
}

// Chart renders an ASCII line chart of one or two series over a shared x
// axis. Values are expected in [0, 100] (percentages).
type Chart struct {
	Title   string
	YLabel  string
	XLabel  string
	Height  int
	Width   int
	SeriesA []float64 // drawn with '*'
	SeriesB []float64 // drawn with 'o' (optional)
	ALegend string
	BLegend string
}

// String renders the chart.
func (c *Chart) String() string {
	h, w := c.Height, c.Width
	if h <= 0 {
		h = 12
	}
	if w <= 0 {
		w = 72
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(series []float64, mark byte) {
		if len(series) == 0 {
			return
		}
		for x := 0; x < w; x++ {
			idx := x * (len(series) - 1) / max(w-1, 1)
			v := series[idx]
			if v < 0 {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			y := h - 1 - int(v/100*float64(h-1)+0.5)
			grid[y][x] = mark
		}
	}
	plot(c.SeriesA, '*')
	plot(c.SeriesB, 'o')

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		pct := 100 - i*100/(h-1)
		fmt.Fprintf(&b, "%3d%% |%s|\n", pct, string(row))
	}
	fmt.Fprintf(&b, "     +%s+\n", strings.Repeat("-", w))
	if c.XLabel != "" {
		fmt.Fprintf(&b, "      %s\n", c.XLabel)
	}
	if c.ALegend != "" {
		fmt.Fprintf(&b, "      * %s", c.ALegend)
		if c.BLegend != "" {
			fmt.Fprintf(&b, "   o %s", c.BLegend)
		}
		b.WriteString("\n")
	}
	return b.String()
}
