package vm

import (
	"testing"

	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m := New()
	m.Thread(0, "main")
	return m
}

func TestConstOpStoreLoad(t *testing.T) {
	m := newTestMachine(t)
	a := m.Const(40)
	b := m.Const(2)
	sum := m.Op(isa.OpAdd, a, b)
	if m.Val(sum) != 42 {
		t.Fatalf("Val(sum) = %d", m.Val(sum))
	}
	addr := m.Heap.Alloc(8)
	m.StoreU64(addr, sum)
	back := m.LoadU64(addr)
	if m.Val(back) != 42 {
		t.Fatalf("loaded %d, want 42", m.Val(back))
	}
	// Trace shape: const, const, op, store, load.
	kinds := []isa.Kind{isa.KindConst, isa.KindConst, isa.KindOp, isa.KindStore, isa.KindLoad}
	if len(m.Tr.Recs) != len(kinds) {
		t.Fatalf("trace length %d, want %d", len(m.Tr.Recs), len(kinds))
	}
	for i, k := range kinds {
		if m.Tr.Recs[i].Kind != k {
			t.Errorf("rec %d kind %v, want %v", i, m.Tr.Recs[i].Kind, k)
		}
	}
	if err := m.Tr.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestStablePCsAcrossInvocations(t *testing.T) {
	m := newTestMachine(t)
	fn := m.Func("work", "test")
	var pcs [2][]uint32
	for round := 0; round < 2; round++ {
		start := len(m.Tr.Recs)
		m.Call(fn, func() {
			m.At("body")
			x := m.Const(1)
			y := m.AddImm(x, 2)
			_ = y
		})
		for _, r := range m.Tr.Recs[start:] {
			pcs[round] = append(pcs[round], r.PC)
		}
	}
	if len(pcs[0]) != len(pcs[1]) {
		// Imm caching makes round 2 shorter (constant already materialized);
		// compare only the common structure: same PC must appear.
		t.Logf("round lengths differ (%d vs %d) due to Imm cache; checking site reuse", len(pcs[0]), len(pcs[1]))
	}
	// The first record of each call body (the Const at label "body") must
	// share a PC across invocations.
	if pcs[0][1] != pcs[1][1] {
		t.Errorf("body-entry PCs differ across invocations: %#x vs %#x", pcs[0][1], pcs[1][1])
	}
}

func TestBranchFollowsCondition(t *testing.T) {
	m := newTestMachine(t)
	hot := m.Const(1)
	cold := m.Const(0)
	if !m.Branch(hot) {
		t.Error("Branch(1) should be taken")
	}
	if m.Branch(cold) {
		t.Error("Branch(0) should not be taken")
	}
	recs := m.Tr.Recs
	if recs[2].Aux != 1 || recs[3].Aux != 0 {
		t.Errorf("taken flags wrong: %d, %d", recs[2].Aux, recs[3].Aux)
	}
}

func TestCallRetNesting(t *testing.T) {
	m := newTestMachine(t)
	outer := m.Func("outer", "test")
	inner := m.Func("inner", "test")
	m.Call(outer, func() {
		m.Const(1)
		m.Call(inner, func() {
			m.Const(2)
		})
		m.Const(3)
	})
	var kinds []isa.Kind
	var fns []trace.FuncID
	for i := range m.Tr.Recs {
		kinds = append(kinds, m.Tr.Recs[i].Kind)
		fns = append(fns, m.Tr.Recs[i].Func())
	}
	want := []isa.Kind{isa.KindCall, isa.KindConst, isa.KindCall, isa.KindConst, isa.KindRet, isa.KindConst, isa.KindRet}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// The call to inner is attributed to outer's frame; inner's const to inner.
	if fns[2] != outer.ID || fns[3] != inner.ID || fns[5] != outer.ID {
		t.Errorf("frame attribution wrong: %v", fns)
	}
}

func TestCrossThreadRegisterPanics(t *testing.T) {
	m := New()
	m.Thread(0, "a")
	m.Thread(1, "b")
	r := m.Const(7)
	m.Switch(1)
	defer func() {
		if recover() == nil {
			t.Error("expected cross-thread register panic")
		}
	}()
	m.Op(isa.OpAdd, r, r)
}

func TestCrossThreadThroughMemoryOK(t *testing.T) {
	m := New()
	m.Thread(0, "a")
	m.Thread(1, "b")
	addr := m.Heap.Alloc(8)
	v := m.Const(99)
	m.StoreU64(addr, v)
	m.Switch(1)
	got := m.LoadU64(addr)
	if m.Val(got) != 99 {
		t.Errorf("cross-thread memory value = %d, want 99", m.Val(got))
	}
	if m.Tr.Recs[0].TID != 0 || m.Tr.Recs[2].TID != 1 {
		t.Error("TID attribution wrong")
	}
}

func TestSyscallFillAndSideTable(t *testing.T) {
	m := newTestMachine(t)
	buf := m.IOb.Alloc(16)
	payload := []byte("HTTP/1.1 200 OK!")
	ret := m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone,
		nil, []vmem.Range{{Addr: buf, Size: 16}}, payload)
	if m.Val(ret) != 16 {
		t.Errorf("syscall return = %d, want 16", m.Val(ret))
	}
	if got := m.Mem.ReadBytes(buf, 16); string(got) != string(payload) {
		t.Errorf("kernel fill = %q", got)
	}
	eff := m.Tr.Sys[len(m.Tr.Recs)-1]
	if eff == nil || eff.Num != isa.SysRecvfrom || len(eff.Writes) != 1 {
		t.Errorf("side table entry wrong: %+v", eff)
	}
}

func TestMarkPixels(t *testing.T) {
	m := newTestMachine(t)
	tile := m.Tile.Alloc(256)
	m.MarkPixels(vmem.Range{Addr: tile, Size: 256})
	mk := m.Tr.Marks[len(m.Tr.Recs)-1]
	if mk == nil || mk.Kind != isa.MarkPixels || mk.Buf.Size != 256 {
		t.Fatalf("marker entry wrong: %+v", mk)
	}
	if err := m.Tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	m := newTestMachine(t)
	m.Const(1)
	m.Idle(1000)
	m.Const(2)
	if m.Cycle() != 1002 {
		t.Errorf("cycle = %d, want 1002", m.Cycle())
	}
	if got := m.Tr.CycleAt(1); got != 1001 {
		t.Errorf("CycleAt(1) = %d, want 1001", got)
	}
}

func TestCopyFillWriteData(t *testing.T) {
	m := newTestMachine(t)
	src := m.Heap.Alloc(100)
	dst := m.Heap.Alloc(100)
	content := make([]byte, 100)
	for i := range content {
		content[i] = byte(i)
	}
	m.StaticData(src, content)
	m.Copy(dst, src, 100)
	if got := m.Mem.ReadBytes(dst, 100); string(got) != string(content) {
		t.Error("Copy did not reproduce contents")
	}
	z := m.Heap.Alloc(32)
	m.Fill(z, 32, m.Const(0xAB))
	for _, b := range m.Mem.ReadBytes(z, 32) {
		if b != 0xAB {
			t.Fatalf("Fill wrote %#x", b)
		}
	}
	w := m.Heap.Alloc(11)
	m.WriteData(w, []byte("hello world"))
	if got := m.Mem.ReadBytes(w, 11); string(got) != "hello world" {
		t.Errorf("WriteData = %q", got)
	}
}

func TestScanVisitsAllChunks(t *testing.T) {
	m := newTestMachine(t)
	base := m.Heap.Alloc(30)
	m.StaticData(base, []byte("abcdefghijklmnopqrstuvwxyz1234"))
	lenReg := m.Const(30)
	var offs []int
	var total int
	m.Scan("scan", base, lenReg, 8, func(off int, data isa.Reg) {
		offs = append(offs, off)
		total += 8
	})
	want := []int{0, 8, 16, 24}
	if len(offs) != len(want) {
		t.Fatalf("offsets = %v, want %v", offs, want)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offs, want)
		}
	}
	// First chunk register should hold the first 8 bytes little-endian.
}

func TestScanPCStability(t *testing.T) {
	m := newTestMachine(t)
	fn := m.Func("scanner", "test")
	base := m.Heap.Alloc(64)
	runPCs := func() map[uint32]bool {
		start := len(m.Tr.Recs)
		m.Call(fn, func() {
			m.Scan("s", base, m.Imm(64), 8, func(off int, data isa.Reg) {})
		})
		pcs := map[uint32]bool{}
		for _, r := range m.Tr.Recs[start:] {
			if r.Func() == fn.ID { // root-frame call/ret sites are not part of the loop
				pcs[r.PC] = true
			}
		}
		return pcs
	}
	a := runPCs()
	b := runPCs()
	// Loop iterations must reuse sites: the distinct-PC count should be
	// small (a handful of loop-body sites), not proportional to iterations.
	if len(a) > 20 {
		t.Errorf("scan used %d distinct PCs; loop sites are not being reused", len(a))
	}
	for pc := range b {
		if !a[pc] {
			t.Errorf("second run used new PC %#x", pc)
		}
	}
}

func TestThreadRootFramesAndValidate(t *testing.T) {
	m := New()
	m.Thread(3, "Compositor")
	m.Switch(3)
	m.Const(5)
	r := m.Tr.Recs[0]
	if r.TID != 3 {
		t.Errorf("TID = %d", r.TID)
	}
	if m.Tr.FuncName(r.Func()) != "thread_root:Compositor" {
		t.Errorf("root frame func = %q", m.Tr.FuncName(r.Func()))
	}
	if m.Tr.Namespace(r.Func()) != "base/threading" {
		t.Errorf("root frame namespace = %q", m.Tr.Namespace(r.Func()))
	}
}

func TestDuplicateThreadPanics(t *testing.T) {
	m := New()
	m.Thread(0, "a")
	defer func() {
		if recover() == nil {
			t.Error("expected duplicate-thread panic")
		}
	}()
	m.Thread(0, "b")
}

func TestBookkeepTouchesCounter(t *testing.T) {
	m := newTestMachine(t)
	c := m.Heap.Alloc(4)
	m.Bookkeep(c, 5)
	if v := m.Mem.ReadU64(c, 4); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
}
