package vm

import (
	"webslice/internal/vmem"
)

// Tape is the execution record the replayer needs beyond the trace itself.
// The trace stores instruction structure (kinds, registers, addresses) but
// not values; the tape captures the value side: the SSA register file (each
// register is written exactly once, so the final register file is a complete
// value log), the bytes each input syscall deposited, ground-truth snapshots
// of criterion buffers (syscall read operands, marked pixel tiles), and any
// untraced static-data writes. Together trace+tape make the recorded run a
// standalone, re-executable artifact (the record/replay methodology of
// Wasm-R3 applied to our ISA-level traces).
type Tape struct {
	// Regs is the SSA register file after the run: Regs[r] is the value
	// register r held for its whole lifetime. Index 0 is unused (RegNone).
	Regs []uint64
	// Fills maps a Syscall record index to a copy of the bytes the kernel
	// deposited into its write ranges.
	Fills map[int][]byte
	// SysReads maps a Syscall record index to the bytes of each read range
	// at the moment the call executed (captured before the fill applied) —
	// the ground truth a replayed slice must reproduce for the syscall
	// criterion.
	SysReads map[int][][]byte
	// MarkBytes maps a Marker record index to the marked buffer's contents
	// at mark time — the ground truth for the pixel criterion.
	MarkBytes map[int][]byte
	// Statics records untraced StaticData writes in execution order; Pos is
	// the record index the write happened before.
	Statics []StaticWrite
}

// StaticWrite is one untraced StaticData deposit.
type StaticWrite struct {
	Pos  int
	Addr vmem.Addr
	Data []byte
}

// Capture attaches a fresh tape to the machine and returns it: from now on
// syscall fills, criterion ground truth, and static writes are recorded.
// Call it before the traced run; after the run, seal the register file with
// SealTape (or read RegValues directly).
func (m *Machine) Capture() *Tape {
	m.tape = &Tape{
		Fills:     make(map[int][]byte),
		SysReads:  make(map[int][][]byte),
		MarkBytes: make(map[int][]byte),
	}
	return m.tape
}

// SealTape copies the final register file into the attached tape (no-op if
// Capture was never called) and returns it.
func (m *Machine) SealTape() *Tape {
	if m.tape != nil {
		m.tape.Regs = m.RegValues()
	}
	return m.tape
}

// RegValues returns a copy of the SSA register file: entry r is the value of
// register r. Entry 0 is unused.
func (m *Machine) RegValues() []uint64 {
	out := make([]uint64, len(m.vals))
	copy(out, m.vals)
	return out
}
