// Package vm implements the traced virtual machine: the analog of the
// paper's Pin-instrumented CPU. Engine code (the simulated browser) performs
// every semantically relevant computation through this machine — loads,
// stores, ALU operations, branches, calls, system calls — and each operation
// both executes against simulated memory/registers and appends a record to
// the dynamic trace the profiler later slices.
//
// # Tracing discipline
//
// The honesty of the whole characterization rests on two rules that all
// engine code follows:
//
//  1. Every value that flows between pipeline stages lives in vmem and moves
//     only through traced Load/Op/Store instructions. Go code may orchestrate
//     (decide loop bounds, pick addresses), but the value chain from network
//     bytes to pixels is carried entirely by traced instructions, so the
//     backward slice recovers the true provenance of every pixel.
//  2. Every control decision that depends on traced data is expressed as a
//     traced Branch on a traced condition register, and the enclosing Go
//     control flow follows the branch's outcome. Together with stable static
//     PCs (see At), this gives the profiler real control-flow graphs, real
//     postdominators, and real control dependences.
//
// # Static program counters
//
// Each traced function assigns stable site offsets to its instructions,
// keyed by (label, sequence-within-label). Engine code marks loop heads and
// branch arms with At("label") so that re-executions reuse the same PCs; the
// CFG reconstructed from the dynamic trace then contains genuine joins and
// back edges instead of an unrolled straight line.
package vm

import (
	"fmt"

	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

// Machine is a traced virtual machine: simulated memory, per-thread contexts
// executed sequentially (the paper pinned the Chromium tab process to one
// core so Pin saw a single interleaved instruction stream), and the dynamic
// trace being recorded.
type Machine struct {
	Mem  *vmem.Memory
	Tr   *trace.Trace
	Heap *vmem.Arena
	Tile *vmem.Arena
	IOb  *vmem.Arena

	vals     []uint64           // register file, indexed by Reg; entry 0 unused
	regOwner []uint8            // creating thread per register (cross-thread use check)
	wide     map[isa.Reg][]byte // full contents of vector (>8 byte) loads

	threads map[uint8]*Thread
	cur     *Thread

	cycle  uint64
	markID uint32
	tape   *Tape

	// Strict enables cross-thread register-use panics. Registers model CPU
	// context, which is per thread; inter-thread dataflow must use memory.
	Strict bool
}

// Thread is one simulated thread of the tab process.
type Thread struct {
	ID     uint8
	Name   string
	Stack  *vmem.Arena
	frames []*frame
}

// Fn is a traced function: a symbol plus its static site table.
type Fn struct {
	ID   trace.FuncID
	Name string

	labels  map[string]*labelSites
	nextOff uint16
	full    bool
}

type labelSites struct {
	offs []uint16
}

type frame struct {
	fn    *Fn
	sites *labelSites
	seq   int
	imms  map[uint64]isa.Reg
}

// New creates a machine with an empty trace and address space.
func New() *Machine {
	m := &Machine{
		Mem:      vmem.NewMemory(),
		Tr:       trace.New(),
		Heap:     vmem.NewArena("heap", vmem.HeapBase, 0x2000_0000),
		Tile:     vmem.NewArena("tiles", vmem.TileBase, 0x1000_0000),
		IOb:      vmem.NewArena("io", vmem.IOBase, 0x0800_0000),
		vals:     make([]uint64, 1, 1<<16),
		regOwner: make([]uint8, 1, 1<<16),
		wide:     make(map[isa.Reg][]byte),
		threads:  make(map[uint8]*Thread),
		Strict:   true,
	}
	m.Tr.Clock = append(m.Tr.Clock, trace.ClockPoint{Index: 0, Cycle: 0})
	return m
}

// Func registers (or returns the existing) traced function with the given
// symbol name and namespace. Namespaces drive the paper's Figure 5
// categorization; pass "" for functions that cannot be categorized.
func (m *Machine) Func(name, namespace string) *Fn {
	id, err := m.Tr.AddFunc(name, namespace)
	if err != nil {
		panic("vm: " + err.Error())
	}
	return &Fn{ID: id, Name: name, labels: make(map[string]*labelSites)}
}

// Thread registers a named thread and returns its context. Threads are the
// analog of Chromium's renderer threads (CrRendererMain, Compositor,
// CompositorTileWorker*, Chrome_ChildIOThread, ...). Each thread gets an
// implicit root frame so records are always attributable to a function.
func (m *Machine) Thread(id uint8, name string) *Thread {
	if _, dup := m.threads[id]; dup {
		panic(fmt.Sprintf("vm: duplicate thread id %d", id))
	}
	t := &Thread{
		ID:    id,
		Name:  name,
		Stack: vmem.NewArena("stack:"+name, vmem.StackFor(id), vmem.StackSpan),
	}
	root := m.Func("thread_root:"+name, "base/threading")
	t.frames = append(t.frames, newFrame(root))
	m.threads[id] = t
	m.Tr.Threads = append(m.Tr.Threads, trace.ThreadInfo{ID: id, Name: name})
	if m.cur == nil {
		m.cur = t
	}
	return t
}

// Switch makes tid the executing thread. The machine is sequential (single
// core), so this models a context switch: register state is per thread,
// memory is shared.
func (m *Machine) Switch(tid uint8) {
	t := m.threads[tid]
	if t == nil {
		panic(fmt.Sprintf("vm: switch to unknown thread %d", tid))
	}
	m.cur = t
}

// Cur returns the executing thread.
func (m *Machine) Cur() *Thread { return m.cur }

// Cycle returns the current virtual time (1 instruction = 1 cycle; Idle
// advances time without instructions).
func (m *Machine) Cycle() uint64 { return m.cycle }

// Idle advances virtual time by n cycles with no instruction executing
// (network latency, user think time, an idle main loop).
func (m *Machine) Idle(n uint64) {
	if n == 0 {
		return
	}
	m.cycle += n
	m.Tr.Clock = append(m.Tr.Clock, trace.ClockPoint{Index: len(m.Tr.Recs), Cycle: m.cycle})
}

func newFrame(fn *Fn) *frame {
	f := &frame{fn: fn, imms: make(map[uint64]isa.Reg)}
	f.at("")
	return f
}

func (f *frame) at(label string) {
	s := f.fn.labels[label]
	if s == nil {
		s = &labelSites{}
		f.fn.labels[label] = s
	}
	f.sites = s
	f.seq = 0
}

// pc returns the stable PC for the next instruction site in the frame.
func (f *frame) pc() uint32 {
	if f.seq >= len(f.sites.offs) {
		if f.fn.full {
			// Site table overflowed earlier: fold extra sites onto the last
			// offset so tracing can continue (CFG precision degrades for
			// this function only).
			return trace.MakePC(f.fn.ID, f.fn.nextOff)
		}
		f.fn.nextOff++
		if f.fn.nextOff == 0xFFFF {
			f.fn.full = true
		}
		f.sites.offs = append(f.sites.offs, f.fn.nextOff)
	}
	off := f.sites.offs[f.seq]
	f.seq++
	return trace.MakePC(f.fn.ID, off)
}

func (m *Machine) frame() *frame {
	t := m.cur
	if t == nil {
		panic("vm: no thread registered")
	}
	return t.frames[len(t.frames)-1]
}

// At marks a static label inside the current function: the next emitted
// instructions reuse the site sequence recorded for this label. Place one at
// every loop head and branch arm.
func (m *Machine) At(label string) { m.frame().at(label) }

func (m *Machine) emit(r trace.Rec) int {
	r.PC = m.frame().pc()
	r.TID = m.cur.ID
	m.Tr.Recs = append(m.Tr.Recs, r)
	m.cycle++
	return len(m.Tr.Recs) - 1
}

func (m *Machine) newReg(v uint64) isa.Reg {
	m.vals = append(m.vals, v)
	m.regOwner = append(m.regOwner, m.cur.ID)
	return isa.Reg(len(m.vals) - 1)
}

func (m *Machine) use(r isa.Reg) uint64 {
	if r == isa.RegNone || int(r) >= len(m.vals) {
		panic(fmt.Sprintf("vm: use of invalid register %d", r))
	}
	if m.Strict && m.regOwner[r] != m.cur.ID {
		panic(fmt.Sprintf("vm: thread %q uses register %d owned by thread %d (cross-thread dataflow must go through memory)",
			m.cur.Name, r, m.regOwner[r]))
	}
	return m.vals[r]
}

// Val returns the current value of a register without tracing a use.
func (m *Machine) Val(r isa.Reg) uint64 { return m.vals[r] }

// Const materializes an immediate into a fresh register.
func (m *Machine) Const(v uint64) isa.Reg {
	d := m.newReg(v)
	m.emit(trace.Rec{Kind: isa.KindConst, Dst: d})
	return d
}

// Op computes a binary ALU operation.
func (m *Machine) Op(op isa.AluOp, a, b isa.Reg) isa.Reg {
	va, vb := m.use(a), m.use(b)
	d := m.newReg(op.Eval(va, vb))
	m.emit(trace.Rec{Kind: isa.KindOp, Dst: d, Src1: a, Src2: b, Aux: uint32(op)})
	return d
}

// Imm returns a register holding the immediate v, materializing it with a
// Const instruction the first time the current function activation needs it
// (the compiler keeps constants in registers within a function; cached
// registers never escape their frame, so attribution stays honest).
func (m *Machine) Imm(v uint64) isa.Reg {
	f := m.frame()
	if r, ok := f.imms[v]; ok {
		return r
	}
	r := m.Const(v)
	f.imms[v] = r
	return r
}

// OpImm is Op with an immediate second operand (materialized via Imm).
func (m *Machine) OpImm(op isa.AluOp, a isa.Reg, imm uint64) isa.Reg {
	return m.Op(op, a, m.Imm(imm))
}

// MaxAccess is the largest memory access a single instruction may perform
// (one cache-line-sized vector access, as on x86-64 with AVX-512).
const MaxAccess = 64

func checkSize(size int) {
	if size < 1 || size > MaxAccess {
		panic(fmt.Sprintf("vm: access size %d out of range", size))
	}
}

// Load reads size bytes at a into a fresh register. Loads wider than 8
// bytes are vector loads: the register carries the full contents (its scalar
// value is the low 8 bytes), like an XMM/ZMM register.
func (m *Machine) Load(a vmem.Addr, size int) isa.Reg {
	checkSize(size)
	d := m.newReg(m.Mem.ReadU64(a, min(size, 8)))
	if size > 8 {
		m.wide[d] = m.Mem.ReadBytes(a, size)
	}
	m.emit(trace.Rec{Kind: isa.KindLoad, Dst: d, Addr: a, Size: uint16(size)})
	return d
}

// LoadVia is Load with the effective address taken from a register, so the
// address computation participates in the slice.
func (m *Machine) LoadVia(addrReg isa.Reg, size int) isa.Reg {
	checkSize(size)
	a := vmem.Addr(m.use(addrReg))
	d := m.newReg(m.Mem.ReadU64(a, min(size, 8)))
	if size > 8 {
		m.wide[d] = m.Mem.ReadBytes(a, size)
	}
	m.emit(trace.Rec{Kind: isa.KindLoad, Dst: d, Src2: addrReg, Addr: a, Size: uint16(size)})
	return d
}

// Store writes size bytes of v at a. If v is a vector register (from a wide
// Load) its full contents are written; otherwise its 8-byte scalar value is
// repeated across the span (a splat store).
func (m *Machine) Store(a vmem.Addr, size int, v isa.Reg) {
	checkSize(size)
	m.writeReg(a, size, v)
	m.emit(trace.Rec{Kind: isa.KindStore, Src1: v, Addr: a, Size: uint16(size)})
}

// StoreVia is Store with the effective address taken from a register.
func (m *Machine) StoreVia(addrReg isa.Reg, size int, v isa.Reg) {
	checkSize(size)
	a := vmem.Addr(m.use(addrReg))
	m.writeReg(a, size, v)
	m.emit(trace.Rec{Kind: isa.KindStore, Src1: v, Src2: addrReg, Addr: a, Size: uint16(size)})
}

func (m *Machine) writeReg(a vmem.Addr, size int, v isa.Reg) {
	val := m.use(v)
	if size <= 8 {
		m.Mem.WriteU64(a, size, val)
		return
	}
	if w, ok := m.wide[v]; ok && len(w) >= size {
		m.Mem.WriteBytes(a, w[:size])
		// Vector registers are transient (load-then-store); drop the wide
		// contents after the first store so the side map stays small over
		// multi-million-instruction traces.
		delete(m.wide, v)
		return
	}
	var pat [8]byte
	for i := range pat {
		pat[i] = byte(val >> (8 * i))
	}
	for off := 0; off < size; off += 8 {
		n := min(8, size-off)
		m.Mem.WriteBytes(a+vmem.Addr(off), pat[:n])
	}
}

// Branch emits a conditional branch on cond and returns whether it was
// taken (cond != 0), so Go control flow can follow the traced decision.
func (m *Machine) Branch(cond isa.Reg) bool {
	taken := m.use(cond) != 0
	var aux uint32
	if taken {
		aux = 1
	}
	m.emit(trace.Rec{Kind: isa.KindBranch, Src1: cond, Aux: aux})
	return taken
}

// Call emits a call to fn, executes body inside the callee frame, then
// emits the return. Arguments and results pass through registers (same
// thread) or memory, at the caller's choice.
func (m *Machine) Call(fn *Fn, body func()) {
	m.emit(trace.Rec{Kind: isa.KindCall, Aux: uint32(fn.ID)})
	t := m.cur
	t.frames = append(t.frames, newFrame(fn))
	body()
	if m.cur != t {
		panic("vm: thread switched inside a call body")
	}
	m.emit(trace.Rec{Kind: isa.KindRet})
	t.frames = t.frames[:len(t.frames)-1]
}

// Syscall emits a system call. a1 and a2 are argument registers the kernel
// reads (use RegNone when absent); reads and writes are the user-memory
// ranges the kernel consumes and produces. If the syscall is an input call
// per its spec, `fill` (optional) provides the bytes the kernel deposits.
func (m *Machine) Syscall(num isa.Sys, a1, a2 isa.Reg, reads, writes []vmem.Range, fill []byte) isa.Reg {
	if a1 != isa.RegNone {
		m.use(a1)
	}
	if a2 != isa.RegNone {
		m.use(a2)
	}
	// Replay ground truth: snapshot the read operands before the fill lands
	// (the bytes the kernel consumed at call time).
	var sysReads [][]byte
	if m.tape != nil && len(reads) > 0 {
		sysReads = make([][]byte, len(reads))
		for k, rd := range reads {
			sysReads[k] = m.Mem.ReadBytes(rd.Addr, int(rd.Size))
		}
	}
	var ret uint64
	if len(writes) > 0 && fill != nil {
		rem := fill
		for _, w := range writes {
			n := min(len(rem), int(w.Size))
			m.Mem.WriteBytes(w.Addr, rem[:n])
			rem = rem[n:]
			ret += uint64(n)
		}
	}
	d := m.newReg(ret)
	i := m.emit(trace.Rec{Kind: isa.KindSyscall, Dst: d, Src1: a1, Src2: a2, Aux: uint32(num)})
	m.Tr.Sys[i] = &trace.SysEffect{Num: num, Reads: reads, Writes: writes}
	if m.tape != nil {
		if sysReads != nil {
			m.tape.SysReads[i] = sysReads
		}
		if fill != nil {
			m.tape.Fills[i] = append([]byte(nil), fill...)
		}
	}
	return d
}

// MarkPixels plants a pixel-criteria marker declaring that buf holds final
// pixel values about to be displayed — the analog of the paper's
// `xchg %r13w,%r13w` marker plus external tile-address file written inside
// RasterBufferProvider::PlaybackToMemory.
func (m *Machine) MarkPixels(buf vmem.Range) {
	m.mark(isa.MarkPixels, buf)
}

// MarkAux plants a custom criteria marker over buf.
func (m *Machine) MarkAux(buf vmem.Range) {
	m.mark(isa.MarkAux, buf)
}

func (m *Machine) mark(kind isa.MarkKind, buf vmem.Range) {
	m.markID++
	i := m.emit(trace.Rec{Kind: isa.KindMarker, Aux: m.markID})
	m.Tr.Marks[i] = &trace.Mark{ID: m.markID, Kind: kind, Buf: buf}
	if m.tape != nil {
		m.tape.MarkBytes[i] = m.Mem.ReadBytes(buf.Addr, int(buf.Size))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
