package vm

import (
	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// This file holds convenience wrappers over the core instruction emitters.
// They keep engine code terse without changing the tracing discipline: every
// helper bottoms out in traced Load/Op/Store/Branch instructions.

// StaticData deposits bytes into memory without tracing. It models data that
// exists before tracing begins — the binary's read-only segments (font
// tables, opcode tables) that Pin would also not attribute to any executed
// instruction.
func (m *Machine) StaticData(a vmem.Addr, b []byte) {
	m.Mem.WriteBytes(a, b)
	if m.tape != nil {
		m.tape.Statics = append(m.tape.Statics, StaticWrite{
			Pos:  len(m.Tr.Recs),
			Addr: a,
			Data: append([]byte(nil), b...),
		})
	}
}

// Copy emits a traced memory copy of n bytes (vector loads and stores in
// MaxAccess-sized chunks, like an unrolled memcpy).
func (m *Machine) Copy(dst, src vmem.Addr, n int) {
	m.At("memcpy")
	for n > 0 {
		c := min(n, MaxAccess)
		v := m.Load(src, c)
		m.Store(dst, c, v)
		src += vmem.Addr(c)
		dst += vmem.Addr(c)
		n -= c
	}
}

// Fill stores the low byte of v into n bytes starting at dst (traced, in
// chunked vector stores). The register value is splatted, like memset.
func (m *Machine) Fill(dst vmem.Addr, n int, v isa.Reg) {
	m.At("memset")
	splat := m.splat(v)
	for n > 0 {
		c := min(n, MaxAccess)
		m.Store(dst, c, splat)
		dst += vmem.Addr(c)
		n -= c
	}
}

func (m *Machine) splat(v isa.Reg) isa.Reg {
	b := m.OpImm(isa.OpAnd, v, 0xFF)
	s := b
	for i := 0; i < 3; i++ {
		sh := m.OpImm(isa.OpShl, s, uint64(8<<uint(i)))
		s = m.Op(isa.OpOr, s, sh)
	}
	return s
}

// WriteData emits traced constant stores of b at a (the program
// materializing computed constants into memory).
func (m *Machine) WriteData(a vmem.Addr, b []byte) {
	m.At("writedata")
	for len(b) > 0 {
		c := min(len(b), 8)
		var v uint64
		for i := 0; i < c; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		m.Store(a, c, m.Const(v))
		a += vmem.Addr(c)
		b = b[c:]
	}
}

// LoadU8 loads one byte.
func (m *Machine) LoadU8(a vmem.Addr) isa.Reg { return m.Load(a, 1) }

// LoadU16 loads two bytes.
func (m *Machine) LoadU16(a vmem.Addr) isa.Reg { return m.Load(a, 2) }

// LoadU32 loads four bytes.
func (m *Machine) LoadU32(a vmem.Addr) isa.Reg { return m.Load(a, 4) }

// LoadU64 loads eight bytes.
func (m *Machine) LoadU64(a vmem.Addr) isa.Reg { return m.Load(a, 8) }

// StoreU8 stores one byte of v.
func (m *Machine) StoreU8(a vmem.Addr, v isa.Reg) { m.Store(a, 1, v) }

// StoreU16 stores two bytes of v.
func (m *Machine) StoreU16(a vmem.Addr, v isa.Reg) { m.Store(a, 2, v) }

// StoreU32 stores four bytes of v.
func (m *Machine) StoreU32(a vmem.Addr, v isa.Reg) { m.Store(a, 4, v) }

// StoreU64 stores eight bytes of v.
func (m *Machine) StoreU64(a vmem.Addr, v isa.Reg) { m.Store(a, 8, v) }

// Add is Op(OpAdd, ...).
func (m *Machine) Add(a, b isa.Reg) isa.Reg { return m.Op(isa.OpAdd, a, b) }

// AddImm adds an immediate.
func (m *Machine) AddImm(a isa.Reg, imm uint64) isa.Reg { return m.OpImm(isa.OpAdd, a, imm) }

// Mov copies a register.
func (m *Machine) Mov(a isa.Reg) isa.Reg { return m.Op(isa.OpMov, a, a) }

// IfNZ branches on cond and returns taken; sugar for Branch.
func (m *Machine) IfNZ(cond isa.Reg) bool { return m.Branch(cond) }

// Scan runs a traced loop over [base, base+len) where len is the value of
// lenReg, reading chunk bytes per iteration. Each iteration carries the real
// loop anatomy — induction-variable update, bounds compare, conditional
// branch, chunked vector load — so scan work is control-dependent on the
// traced length and data-dependent on the scanned bytes. It is the workhorse
// of the tokenizers and decoders. body receives the byte offset and the
// loaded chunk register.
func (m *Machine) Scan(label string, base vmem.Addr, lenReg isa.Reg, chunk int, body func(off int, data isa.Reg)) {
	if chunk < 1 || chunk > MaxAccess {
		panic("vm: bad scan chunk")
	}
	n := int(m.use(lenReg))
	idx := m.Imm(0)
	baseReg := m.Imm(uint64(base))
	for off := 0; ; off += chunk {
		m.At(label)
		cond := m.Op(isa.OpCmpLT, idx, lenReg)
		if !m.Branch(cond) {
			break
		}
		m.At(label + ":body")
		addr := m.Op(isa.OpAdd, baseReg, idx)
		c := min(chunk, n-off)
		data := m.LoadVia(addr, c)
		body(off, data)
		m.At(label + ":next")
		idx = m.AddImm(idx, uint64(chunk))
	}
	m.At(label + ":done")
}

// Loop runs body n times under a traced counted loop: induction update,
// bounds compare, and conditional exit branch per iteration. The explicit
// exit branch matters for control dependence: it makes the code after the
// loop reachable from the loop head without passing through the body, so
// body work is control-dependent on the loop/guard branches exactly as in
// real machine code.
func (m *Machine) Loop(label string, n int, body func(i int)) {
	idx := m.Imm(0)
	bound := m.Imm(uint64(n))
	for i := 0; ; i++ {
		m.At(label + ":head")
		c := m.Op(isa.OpCmpLT, idx, bound)
		if !m.Branch(c) {
			break
		}
		m.At(label + ":body")
		body(i)
		m.At(label + ":next")
		idx = m.AddImm(idx, 1)
	}
	m.At(label + ":done")
}

// Bookkeep emits n rounds of counter-update busywork against stats memory at
// addr (load, add one, store). It models bookkeeping loops — debug
// histograms, metrics — whose output nothing user-visible ever reads.
func (m *Machine) Bookkeep(addr vmem.Addr, n int) {
	for i := 0; i < n; i++ {
		m.At("bookkeep")
		c := m.LoadU32(addr)
		c2 := m.AddImm(c, 1)
		m.StoreU32(addr, c2)
	}
}
