module webslice

go 1.22
