// Command tracedump inspects binary traces written by `webslice trace -o`
// (flat v2 or block-compressed v3) and converts between the two formats.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"

	"webslice/internal/isa"
	"webslice/internal/trace"
)

func main() {
	n := flag.Int("n", 40, "how many records to print")
	offset := flag.Int("off", 0, "first record to print")
	convert := flag.String("convert", "", "instead of dumping, rewrite the trace to this path (see -format)")
	format := flag.String("format", "v3", "output format for -convert: v2 (flat) or v3 (block-compressed)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-n N] [-off K] [-convert out.wslt [-format v2|v3]] trace.wslt")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
	if *convert != "" {
		if err := convertTrace(data, *convert, *format); err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(1)
		}
		return
	}
	t, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		var de *trace.DecodeError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "tracedump: %s is not a valid trace: decoding the %s failed at byte offset %d: %s\n",
				flag.Arg(0), de.Section, de.Offset, de.Msg)
		} else {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
		}
		os.Exit(1)
	}
	if err := t.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump: invalid trace:", err)
		os.Exit(1)
	}
	s := t.Summarize()
	fmt.Printf("format v%d, %d records, %d functions, %d threads, %d syscalls, %d markers\n",
		trace.FormatVersion(data), s.Total, s.Functions, s.Threads, s.Syscalls, s.Markers)
	for k, c := range s.ByKind {
		fmt.Printf("  %-8s %d\n", k, c)
	}
	end := *offset + *n
	if end > len(t.Recs) {
		end = len(t.Recs)
	}
	for i := *offset; i < end; i++ {
		r := &t.Recs[i]
		fmt.Printf("%8d t%d %-8s pc=%08x dst=r%-6d src=r%-6d,r%-6d addr=%08x+%-3d aux=%-6d %s\n",
			i, r.TID, r.Kind, r.PC, r.Dst, r.Src1, r.Src2, uint32(r.Addr), r.Size, r.Aux,
			t.FuncName(r.Func()))
		if r.Kind == isa.KindSyscall {
			if eff := t.Sys[i]; eff != nil {
				fmt.Printf("           syscall %s reads=%v writes=%v\n", eff.Num, eff.Reads, eff.Writes)
			}
		}
		if mk := t.Marks[i]; mk != nil {
			fmt.Printf("           marker %s buf=%v\n", mk.Kind, mk.Buf)
		}
	}
}

// convertTrace rewrites an encoded trace into the requested format. A
// v3 input headed to v2 goes through the streaming transcoder, which
// reproduces the canonical v2 bytes without materializing the records.
func convertTrace(data []byte, out, format string) error {
	var buf bytes.Buffer
	switch format {
	case "v2":
		if trace.FormatVersion(data) == 3 {
			br, err := trace.OpenV3(data)
			if err != nil {
				return err
			}
			if err := br.WriteV2(&buf); err != nil {
				return err
			}
			break
		}
		t, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return err
		}
		if err := t.Write(&buf); err != nil {
			return err
		}
	case "v3":
		t, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return err
		}
		if err := t.WriteV3Blocks(&buf, trace.DefaultBlockRecs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q (want v2 or v3)", format)
	}
	return os.WriteFile(out, buf.Bytes(), 0o644)
}
