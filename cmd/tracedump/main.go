// Command tracedump inspects binary traces written by `webslice trace -o`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"webslice/internal/isa"
	"webslice/internal/trace"
)

func main() {
	n := flag.Int("n", 40, "how many records to print")
	offset := flag.Int("off", 0, "first record to print")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-n N] [-off K] trace.wslt")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		var de *trace.DecodeError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "tracedump: %s is not a valid trace: decoding the %s failed at byte offset %d: %s\n",
				flag.Arg(0), de.Section, de.Offset, de.Msg)
		} else {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
		}
		os.Exit(1)
	}
	if err := t.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump: invalid trace:", err)
		os.Exit(1)
	}
	s := t.Summarize()
	fmt.Printf("%d records, %d functions, %d threads, %d syscalls, %d markers\n",
		s.Total, s.Functions, s.Threads, s.Syscalls, s.Markers)
	for k, c := range s.ByKind {
		fmt.Printf("  %-8s %d\n", k, c)
	}
	end := *offset + *n
	if end > len(t.Recs) {
		end = len(t.Recs)
	}
	for i := *offset; i < end; i++ {
		r := &t.Recs[i]
		fmt.Printf("%8d t%d %-8s pc=%08x dst=r%-6d src=r%-6d,r%-6d addr=%08x+%-3d aux=%-6d %s\n",
			i, r.TID, r.Kind, r.PC, r.Dst, r.Src1, r.Src2, uint32(r.Addr), r.Size, r.Aux,
			t.FuncName(r.Func()))
		if r.Kind == isa.KindSyscall {
			if eff := t.Sys[i]; eff != nil {
				fmt.Printf("           syscall %s reads=%v writes=%v\n", eff.Num, eff.Reads, eff.Writes)
			}
		}
		if mk := t.Marks[i]; mk != nil {
			fmt.Printf("           marker %s buf=%v\n", mk.Kind, mk.Buf)
		}
	}
}
