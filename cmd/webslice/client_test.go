package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webslice/internal/service"
)

// recordClock is an auto-advancing service.Clock: Sleep returns at once
// but logs the requested duration and moves Now forward by it, so the
// client's backoff schedule is asserted without real waiting.
type recordClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newRecordClock() *recordClock { return &recordClock{now: time.Unix(1700000000, 0)} }

func (c *recordClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *recordClock) Sleep(d time.Duration, stop <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

func (c *recordClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

func testClient(srv *httptest.Server, maxWait time.Duration) (*client, *recordClock) {
	clock := newRecordClock()
	return &client{base: srv.URL, hc: srv.Client(), clock: clock, maxWait: maxWait}, clock
}

// A busy server's 429s are retried, waiting out the Retry-After hint when
// it exceeds the client's own backoff, and the submit eventually lands.
func TestClientSubmitHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	posts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		n := posts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "j000123"})
	}))
	defer srv.Close()

	c, clock := testClient(srv, 0)
	id, err := c.submit(func() (*http.Response, error) {
		return c.hc.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{}"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != "j000123" {
		t.Fatalf("id = %q", id)
	}
	if posts != 3 {
		t.Fatalf("posts = %d, want 3 (two 429s then accept)", posts)
	}
	// Retry-After: 3 dominates the 100ms/200ms base backoff both times.
	want := []time.Duration{3 * time.Second, 3 * time.Second}
	got := clock.Sleeps()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
}

// Without a Retry-After header the client falls back to its own capped
// exponential backoff: 100ms, 200ms, 400ms, ... capped at 2s.
func TestClientSubmitExponentialBackoff(t *testing.T) {
	var mu sync.Mutex
	posts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		n := posts
		mu.Unlock()
		if n <= 7 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "j1"})
	}))
	defer srv.Close()

	c, clock := testClient(srv, 0)
	if _, err := c.submit(func() (*http.Response, error) {
		return c.hc.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{}"))
	}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	got := clock.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

// -max-wait bounds the total time spent retrying: a permanently busy
// server produces an error instead of an unbounded loop.
func TestClientSubmitMaxWait(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "10")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c, clock := testClient(srv, 15*time.Second)
	_, err := c.submit(func() (*http.Response, error) {
		return c.hc.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{}"))
	})
	if err == nil || !strings.Contains(err.Error(), "-max-wait") {
		t.Fatalf("err = %v, want a -max-wait give-up", err)
	}
	// First wait (10s, trimmed within budget) runs; the second attempt's
	// wait is trimmed to the remaining 5s; the third finds no budget left.
	sleeps := clock.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != 10*time.Second || sleeps[1] != 5*time.Second {
		t.Fatalf("sleeps = %v, want [10s 5s]", sleeps)
	}
}

// Result polling backs off exponentially instead of the old fixed 200ms
// hammer, and stops as soon as the job reports terminal.
func TestClientAwaitBackoff(t *testing.T) {
	var mu sync.Mutex
	polls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		polls++
		n := polls
		mu.Unlock()
		info := service.Info{ID: "j1", Status: service.StatusRunning}
		if n >= 4 {
			info.Status = service.StatusDone
		}
		json.NewEncoder(w).Encode(info)
	}))
	defer srv.Close()

	c, clock := testClient(srv, 0)
	if err := c.await("j1"); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	got := clock.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// A failed job surfaces its error through await rather than hanging.
func TestClientAwaitFailedJob(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Info{ID: "j1", Status: service.StatusFailed, Error: "panic: bad trace"})
	}))
	defer srv.Close()
	c, _ := testClient(srv, 0)
	err := c.await("j1")
	if err == nil || !strings.Contains(err.Error(), "bad trace") {
		t.Fatalf("err = %v, want the job's failure", err)
	}
}

func TestSplitSites(t *testing.T) {
	got := splitSites("a,b,,c,")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitSites = %v", got)
	}
	if splitSites("") != nil {
		t.Fatal("splitSites(\"\") != nil")
	}
}
