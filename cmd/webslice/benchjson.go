// Machine-readable repro output: `webslice repro -json` mirrors the printed
// tables into BENCH_repro.json — one row set per experiment plus wall-clock
// timings and instruction counts — so the performance trajectory of the
// reproduction is tracked commit over commit.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchFile is the default output path, relative to the working directory.
const BenchFile = "BENCH_repro.json"

// BenchDoc is the top-level BENCH_repro.json document. Workers is the -j
// value the run was invoked with (0 = GOMAXPROCS) and GoMaxProcs the
// resolved parallelism, so recorded wall times can be compared across
// machines and pool sizes.
//
// Schema 2 added the "backward" experiment (sequential vs segmented
// backward-pass wall time) and per-pass slice timing fields on the
// render+slice rows: slice_scan_ms, slice_stitch_ms, slice_tally_ms,
// slice_segments.
//
// Schema 3 added the "compression" experiment: per-site v2 vs v3 trace
// encoding sizes (v2_bytes, v3_bytes, ratio) and codec wall times
// (encode_v2_ms, encode_v3_ms, decode_v2_ms, decode_v3_ms), each row
// gated on the v3→v2 transcode being byte-identical.
type BenchDoc struct {
	Schema      int               `json:"schema"`
	Scale       float64           `json:"scale"`
	Workers     int               `json:"workers"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Experiments []BenchExperiment `json:"experiments"`
	TotalWallMs int64             `json:"total_wall_ms"`
}

// BenchExperiment is one experiment's rows and wall time.
type BenchExperiment struct {
	Name   string     `json:"name"`
	WallMs int64      `json:"wall_ms"`
	Rows   []BenchRow `json:"rows,omitempty"`
}

// BenchRow is one named row of numeric values (encoding/json sorts the map
// keys, so the file is deterministic up to timings).
type BenchRow struct {
	Name   string             `json:"name"`
	Values map[string]float64 `json:"values,omitempty"`
}

// benchRecorder accumulates experiments as repro runs. A nil recorder is
// valid and records nothing, so the repro path can call it unconditionally.
type benchRecorder struct {
	doc      BenchDoc
	cur      *BenchExperiment
	start    time.Time
	curStart time.Time
}

func newBenchRecorder(scale float64, workers int) *benchRecorder {
	return &benchRecorder{
		doc:   BenchDoc{Schema: 3, Scale: scale, Workers: workers, GoMaxProcs: runtime.GOMAXPROCS(0)},
		start: time.Now(),
	}
}

// begin closes the current experiment (if any) and starts a new one.
func (r *benchRecorder) begin(name string) {
	if r == nil {
		return
	}
	r.flush()
	r.cur = &BenchExperiment{Name: name}
	r.curStart = time.Now()
}

// row appends a row to the current experiment.
func (r *benchRecorder) row(name string, values map[string]float64) {
	if r == nil || r.cur == nil {
		return
	}
	r.cur.Rows = append(r.cur.Rows, BenchRow{Name: name, Values: values})
}

func (r *benchRecorder) flush() {
	if r.cur != nil {
		r.cur.WallMs = time.Since(r.curStart).Milliseconds()
		r.doc.Experiments = append(r.doc.Experiments, *r.cur)
		r.cur = nil
	}
}

// write finalizes the document and writes it to path.
func (r *benchRecorder) write(path string) error {
	if r == nil {
		return nil
	}
	r.flush()
	r.doc.TotalWallMs = time.Since(r.start).Milliseconds()
	b, err := json.MarshalIndent(r.doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench rows written to %s (%d experiments, %d ms total)\n",
		path, len(r.doc.Experiments), r.doc.TotalWallMs)
	return nil
}
