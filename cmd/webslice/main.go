// Command webslice drives the full reproduction: it renders the benchmark
// sites on the simulated browser, runs the slicing profiler, and regenerates
// every table and figure of the paper. Run `webslice repro` for everything,
// or one experiment at a time with -exp. The submit/status/result commands
// are the client side of the websliced service (cmd/websliced).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/experiments"
	"webslice/internal/report"
	"webslice/internal/sites"
	"webslice/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = calibrated benchmark size)")
	exp := fs.String("exp", "all", "experiment: table1|table2|fig2|fig4|fig5|bingload|criteria|faults|backward|compression|all")
	faultSeed := fs.Uint64("faultseed", 7, "fault-plan seed for -exp faults")
	site := fs.String("site", "amazon-desktop", "site: amazon-desktop|amazon-mobile|maps|bing")
	tracePath := fs.String("o", "", "write the binary trace to this path (trace command)")
	traceFormat := fs.String("format", "v3", "trace command: output format, v3 (block-compressed, default) or v2 (flat)")
	in := fs.String("i", "", "read a binary trace from this path (submit command)")
	topN := fs.Int("top", 20, "how many functions to list (categorize command)")
	jsonOut := fs.Bool("json", false, "repro: also write machine-readable rows to "+BenchFile)
	addr := fs.String("addr", "http://localhost:8077", "websliced base URL (submit/status/result commands)")
	id := fs.String("id", "", "job id (status/result commands)")
	criteria := fs.String("criteria", "pixels", "slicing criteria: pixels|syscalls (submit command)")
	wait := fs.Bool("wait", false, "submit/scatter: poll until the job finishes and print its result")
	maxWait := fs.Duration("max-wait", 0, "client commands: give up after this total wait (0 = no limit)")
	scatterSites := fs.String("sites", "", "scatter: comma-separated site names to fan across the cluster")
	jobVerify := fs.Bool("verify", false, "submit: ask the service to run the slice oracles on the job")
	count := fs.Int("count", 50, "verify: number of property-generated sites")
	seed := fs.Uint64("seed", 1, "verify: first property-site seed (site k uses seed+k)")
	golden := fs.String("golden", "examples/golden/corpus.json", "verify: golden corpus path (empty skips the golden phase)")
	update := fs.Bool("update", false, "verify: regenerate the golden corpus digests instead of comparing")
	workers := fs.Int("j", 0, "concurrent experiment sessions (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(os.Args[2:])

	// NaN fails every comparison, so this also rejects -scale NaN.
	if !(*scale > 0) {
		fmt.Fprintf(os.Stderr, "webslice: invalid -scale %v: must be > 0\n", *scale)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webslice:", err)
		os.Exit(1)
	}

	switch cmd {
	case "repro":
		var rec *benchRecorder
		if *jsonOut {
			rec = newBenchRecorder(*scale, *workers)
		}
		err = repro(*scale, *exp, *faultSeed, *workers, rec)
		if err == nil {
			err = rec.write(BenchFile)
		}
	case "verify":
		err = doVerify(*exp, experiments.VerifyConfig{
			Scale: *scale, Workers: *workers,
			PropertyCount: *count, Seed: *seed,
			GoldenPath: *golden, Update: *update,
		})
	case "trace":
		err = doTrace(*scale, *site, *tracePath, *traceFormat)
	case "slice":
		err = doSlice(*scale, *site)
	case "categorize":
		err = doCategorize(*scale, *site, *topN)
	case "unused":
		err = reproTableI(*scale, *workers, nil)
	case "cpu":
		err = reproFigure2(*scale, nil)
	case "calibrate":
		err = calibrate(*scale)
	case "submit":
		err = newClient(*addr, *maxWait).clientSubmit(*site, *scale, *criteria, *in, *wait, *jobVerify)
	case "scatter":
		err = newClient(*addr, *maxWait).clientScatter(*scatterSites, *scale, *criteria, *wait)
	case "status":
		err = newClient(*addr, *maxWait).clientStatus(*id)
	case "result":
		err = newClient(*addr, *maxWait).clientResult(*id)
	case "quarantined":
		err = newClient(*addr, *maxWait).clientQuarantined()
	case "spans":
		jobID := *id
		if jobID == "" {
			jobID = fs.Arg(0) // allow `webslice spans <job>` without -id
		}
		err = newClient(*addr, *maxWait).clientSpans(jobID)
	default:
		stopProfiles()
		usage()
		os.Exit(2)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "webslice:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges for a heap profile, per
// the -cpuprofile/-memprofile flags. The returned stop function finishes
// both; it is safe to call when neither flag was set.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "webslice: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "webslice: memprofile:", err)
			}
		}
	}, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: webslice <command> [flags]

commands:
  repro      regenerate the paper's tables and figures (-exp selects one; -json
             also writes machine-readable rows to BENCH_repro.json)
  trace      render a site and write its binary instruction trace (-site, -o,
             -format v3 block-compressed (default) or v2 flat)
  slice      render a site and print pixel/syscall slice statistics (-site)
  categorize render+slice a site and list the most-wasteful functions (-site)
  unused     Table I only (unused JS/CSS bytes)
  cpu        Figure 2 only (main-thread CPU utilization)
  calibrate  print per-thread statistics for tuning workload knobs
  verify     run the slice-validation oracles (-exp golden|replay|differential|
             invariants|all; -count/-seed property sites, -golden corpus path,
             -update to regenerate digests)
  submit     send a job to a running websliced (-site or -i trace, -criteria,
             -wait to block for the result, -verify for server-side oracles)
  scatter    fan a batch of sites across a websliced cluster coordinator
             (-sites a,b,c; -wait gathers results in site order)
  status     print a websliced job's status (-id)
  result     print a finished websliced job's result (-id)
  quarantined  list websliced's poisoned jobs (quarantined after panicking)
  spans      render a job's span tree from a websliced started with
             -trace-spans (-id <job> or "webslice spans <job>"); against a
             coordinator this is the merged cross-node trace

flags: -scale 1.0 (workload size, must be > 0), -exp all, -site amazon-desktop,
       -j 0 (concurrent experiment sessions and backward-pass workers,
       0 = GOMAXPROCS), -o/-i trace path,
       -faultseed 7 (fault-plan seed for -exp faults), -json (repro),
       -cpuprofile/-memprofile <file> (pprof output),
       -addr http://localhost:8077, -id <job>, -max-wait 0 (client commands)`)
}

func benchByName(name string, scale float64, browse bool) (sites.Benchmark, error) {
	return sites.ByName(name, sites.Options{Scale: scale, Browse: browse})
}

func repro(scale float64, exp string, faultSeed uint64, workers int, rec *benchRecorder) error {
	switch exp {
	case "all", "table1", "table2", "fig2", "fig4", "fig5", "bingload", "criteria", "faults", "backward", "compression":
	default:
		return fmt.Errorf("unknown experiment %q (want table1|table2|fig2|fig4|fig5|bingload|criteria|faults|backward|compression|all)", exp)
	}
	all := exp == "all"
	var runs []*experiments.Run
	needRuns := all || exp == "table2" || exp == "fig4" || exp == "fig5" || exp == "bingload" || exp == "criteria"
	if needRuns {
		fmt.Printf("Running the four Table II benchmarks at scale %.2f...\n\n", scale)
		rec.begin("render+slice")
		var err error
		// The syscall slice rides along in the same fused backward pass
		// whenever the criteria comparison will need it.
		runs, err = experiments.ExecuteTableIIWith(experiments.Config{
			Scale: scale, Workers: workers, Syscalls: all || exp == "criteria",
		})
		if err != nil {
			return err
		}
		for _, r := range runs {
			rec.row(r.Bench.Name, map[string]float64{
				"instructions":       float64(r.Pixel.Total),
				"slice_instructions": float64(r.Pixel.SliceCount),
				"slice_pct":          r.Pixel.Percent(),
				"threads":            float64(len(r.Trace.Threads)),
				"render_wall_ms":     r.Timing.RenderMs,
				"forward_wall_ms":    r.Timing.ForwardMs,
				"slice_wall_ms":      r.Timing.SliceMs,
				"slice_scan_ms":      r.Timing.SliceScanMs,
				"slice_stitch_ms":    r.Timing.SliceStitchMs,
				"slice_tally_ms":     r.Timing.SliceTallyMs,
				"slice_segments":     float64(r.Timing.SliceSegments),
			})
		}
	}
	if all || exp == "table2" {
		fmt.Println(experiments.TableII(runs).String())
	}
	if all || exp == "table1" {
		if err := reproTableI(scale, workers, rec); err != nil {
			return err
		}
	}
	if all || exp == "fig2" {
		if err := reproFigure2(scale, rec); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		for _, r := range runs {
			fmt.Println(experiments.Figure4(r).String())
		}
	}
	if all || exp == "fig5" {
		rec.begin("fig5")
		fmt.Println(experiments.Figure5(runs).String())
		for _, r := range runs {
			d := analysis.Categorize(r.Trace, r.Pixel)
			vals := map[string]float64{"coverage_pct": d.CoveragePct}
			for _, c := range analysis.Categories {
				vals[c] = 100 * d.Share[c]
			}
			rec.row(r.Bench.Name, vals)
		}
	}
	if all || exp == "bingload" {
		rec.begin("bingload")
		bing := runs[len(runs)-1]
		res, err := experiments.ExecuteBingPartial(bing)
		if err != nil {
			return err
		}
		fmt.Printf("§V-A Bing partial slice: load phase = %s instructions\n", report.MInstr(res.LoadInstr))
		fmt.Printf("  slicing from the page-loaded point:   %.1f%% of load-time instructions in slice\n", res.LoadOnlyPct)
		fmt.Printf("  slicing from the end of the session:  %.1f%% of load-time instructions in slice\n", res.FullSessionPct)
		fmt.Printf("  (browsing makes %.1f%% more of the load work useful; the paper measured 49.8%% vs 50.6%%)\n\n",
			res.FullSessionPct-res.LoadOnlyPct)
		rec.row(bing.Bench.Name, map[string]float64{
			"load_instructions": float64(res.LoadInstr),
			"load_only_pct":     res.LoadOnlyPct,
			"full_session_pct":  res.FullSessionPct,
		})
	}
	if all || exp == "faults" {
		fmt.Printf("Running fault-injection pairs (clean + faulty) at scale %.2f, seed %d...\n\n", scale, faultSeed)
		rec.begin("faults")
		pairs, err := experiments.ExecuteFaultsWith(experiments.Config{Scale: scale, Workers: workers}, faultSeed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FaultsTable(pairs, faultSeed).String())
		for _, p := range pairs {
			for _, d := range p.Faulty.Browser.Degraded {
				fmt.Printf("  %s: degraded: %s\n", p.Name, d)
			}
			rec.row(p.Name, map[string]float64{
				"clean_instructions":  float64(p.Clean.Pixel.Total),
				"faulty_instructions": float64(p.Faulty.Pixel.Total),
				"faulty_errpath":      float64(p.FaultyWaste.ErrorPathInstr),
				"faulty_wasted_pct":   p.FaultyWaste.WastedPct(),
				"faulty_slice_pct":    p.Faulty.Pixel.Percent(),
			})
		}
		fmt.Println()
	}
	if all || exp == "backward" {
		fmt.Printf("Measuring sequential vs segmented backward pass at scale %.2f...\n\n", scale)
		rec.begin("backward")
		res, err := experiments.ExecuteBackward(experiments.Config{Scale: scale, Workers: workers})
		if err != nil {
			return err
		}
		fmt.Printf("Parallel backward pass (%s, %s instructions, %d workers, %d segments):\n",
			res.Site, report.MInstr(res.Records), workers, res.Segments)
		fmt.Printf("  sequential walk:   %8.1f ms\n", res.SequentialMs)
		fmt.Printf("  segmented pass:    %8.1f ms  (scan %.1f + stitch %.1f + tally %.1f)\n",
			res.SegmentedMs, res.ScanMs, res.StitchMs, res.TallyMs)
		fmt.Printf("  speedup:           %8.2fx  (results byte-identical: %v)\n\n", res.Speedup, res.Match)
		rec.row(res.Site, map[string]float64{
			"instructions":  float64(res.Records),
			"workers":       float64(res.Workers),
			"segments":      float64(res.Segments),
			"sequential_ms": res.SequentialMs,
			"segmented_ms":  res.SegmentedMs,
			"speedup":       res.Speedup,
			"scan_ms":       res.ScanMs,
			"stitch_ms":     res.StitchMs,
			"tally_ms":      res.TallyMs,
		})
	}
	if all || exp == "criteria" {
		rec.begin("criteria")
		t := &report.Table{
			Title:   "Criteria comparison: pixel-buffer vs system-call slicing (§IV-C)",
			Headers: []string{"Benchmark", "Pixel slice", "Syscall slice", "Pixel-only recs", "Extra syscall recs"},
		}
		for _, r := range runs {
			c, err := experiments.ExecuteCriteriaComparison(r)
			if err != nil {
				return err
			}
			t.AddRow(r.Bench.Name, report.Pct1(c.PixelPct), report.Pct1(c.SyscallPct),
				fmt.Sprint(c.PixelOnly), fmt.Sprint(c.ExtraSyscall))
			rec.row(r.Bench.Name, map[string]float64{
				"pixel_pct":     c.PixelPct,
				"syscall_pct":   c.SyscallPct,
				"extra_syscall": float64(c.ExtraSyscall),
			})
		}
		fmt.Println(t.String())
	}
	if all || exp == "compression" {
		fmt.Printf("Measuring v2 vs v3 trace encodings at scale %.2f...\n\n", scale)
		rec.begin("compression")
		results, err := experiments.ExecuteCompression(experiments.Config{Scale: scale, Workers: workers})
		if err != nil {
			return err
		}
		t := &report.Table{
			Title:   "Trace compression: flat v2 vs block-compressed v3",
			Headers: []string{"Benchmark", "Records", "v2 bytes", "v3 bytes", "Ratio", "Enc v3", "Dec v3"},
		}
		for _, r := range results {
			t.AddRow(r.Site, fmt.Sprint(r.Records), fmt.Sprint(r.V2Bytes), fmt.Sprint(r.V3Bytes),
				fmt.Sprintf("%.2fx", r.Ratio),
				fmt.Sprintf("%.1f ms", r.EncodeV3Ms), fmt.Sprintf("%.1f ms", r.DecodeV3Ms))
			rec.row(r.Site, map[string]float64{
				"records":      float64(r.Records),
				"blocks":       float64(r.Blocks),
				"v2_bytes":     float64(r.V2Bytes),
				"v3_bytes":     float64(r.V3Bytes),
				"ratio":        r.Ratio,
				"encode_v2_ms": r.EncodeV2Ms,
				"encode_v3_ms": r.EncodeV3Ms,
				"decode_v2_ms": r.DecodeV2Ms,
				"decode_v3_ms": r.DecodeV3Ms,
			})
		}
		fmt.Println(t.String())
	}
	return nil
}

// doVerify runs the slice-validation harness: golden corpus digests,
// cross-format (v3) digest equality, replay, differential (naive reference
// slicer), and invariant oracles. phase is the -exp flag reinterpreted:
// golden|crossformat|replay|differential|invariants|all.
func doVerify(phase string, cfg experiments.VerifyConfig) error {
	if phase == "all" && cfg.GoldenPath != "" {
		if _, err := os.Stat(cfg.GoldenPath); err != nil && !cfg.Update {
			return fmt.Errorf("golden corpus %s not found (run `webslice verify -update` to generate it, or pass -golden '')", cfg.GoldenPath)
		}
	}
	st, err := experiments.ExecuteVerify(phase, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("verify %s: OK\n", phase)
	if st.GoldenSites > 0 {
		fmt.Printf("  golden corpus:  %d sites, digests %s\n", st.GoldenSites,
			map[bool]string{true: fmt.Sprintf("regenerated (%d changed)", st.Updated), false: "matched"}[cfg.Update])
	}
	if st.CrossFormat > 0 {
		fmt.Printf("  cross-format:   %d sites sliced identically from v3 streams\n", st.CrossFormat)
	}
	if st.PropertySites > 0 {
		fmt.Printf("  property sites: %d (seeds %d..%d)\n", st.PropertySites, cfg.Seed, cfg.Seed+uint64(st.PropertySites)-1)
	}
	if st.Replays > 0 {
		fmt.Printf("  replays:        %d slices reproduced their criterion bytes\n", st.Replays)
	}
	if st.Differentials > 0 {
		fmt.Printf("  differentials:  %d naive-vs-optimized comparisons agreed exactly\n", st.Differentials)
	}
	if st.Invariants > 0 {
		fmt.Printf("  invariants:     %d sites passed closure/subset/monotonicity\n", st.Invariants)
	}
	return nil
}

func reproTableI(scale float64, workers int, rec *benchRecorder) error {
	rec.begin("table1")
	rows, err := experiments.ExecuteTableIWith(experiments.Config{Scale: scale, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Println(experiments.TableI(rows).String())
	for _, r := range rows {
		rec.row(r.Name, map[string]float64{
			"load_unused_bytes":   float64(r.Load.UnusedBytes),
			"load_total_bytes":    float64(r.Load.TotalBytes),
			"browse_unused_bytes": float64(r.LoadAndBrowse.UnusedBytes),
			"browse_total_bytes":  float64(r.LoadAndBrowse.TotalBytes),
		})
	}
	return nil
}

func reproFigure2(scale float64, rec *benchRecorder) error {
	rec.begin("fig2")
	chart, err := experiments.Figure2(scale)
	if err != nil {
		return err
	}
	fmt.Println(chart.String())
	rec.row("main-thread-utilization", map[string]float64{
		"points": float64(len(chart.SeriesA)),
		"mean":   mean(chart.SeriesA),
	})
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func doTrace(scale float64, site, out, format string) error {
	b, err := benchByName(site, scale, false)
	if err != nil {
		return err
	}
	br := browser.New(b.Site, b.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		return br.Errors[0]
	}
	sum := br.M.Tr.Summarize()
	fmt.Printf("%s: %d instructions, %d syscalls, %d pixel markers, %d functions, %d threads\n",
		b.Name, sum.Total, sum.Syscalls, sum.Markers, sum.Functions, sum.Threads)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		switch format {
		case "v3":
			err = br.M.Tr.WriteV3Blocks(f, trace.DefaultBlockRecs)
		case "v2":
			err = br.M.Tr.Write(f)
		default:
			return fmt.Errorf("unknown -format %q (want v2 or v3)", format)
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%s)\n", out, format)
	}
	return nil
}

func doSlice(scale float64, site string) error {
	b, err := benchByName(site, scale, site == "bing")
	if err != nil {
		return err
	}
	// Both criteria in one fused backward pass: the comparison below then
	// reads the precomputed syscall slice instead of re-walking the trace.
	r, err := experiments.ExecuteCriteria(b, true)
	if err != nil {
		return err
	}
	c, err := experiments.ExecuteCriteriaComparison(r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s instructions\n", b.Name, report.MInstr(r.Pixel.Total))
	fmt.Printf("  pixel slice:   %s\n", report.Pct1(r.Pixel.Percent()))
	fmt.Printf("  syscall slice: %s (extra records: %d)\n", report.Pct1(c.SyscallPct), c.ExtraSyscall)
	for _, th := range r.Trace.Threads {
		fmt.Printf("  %-28s %8s of %s\n", th.Name,
			report.Pct1(r.Pixel.ThreadPercent(th.ID)), report.MInstr(r.Pixel.ByThread[th.ID]))
	}
	return nil
}

func doCategorize(scale float64, site string, topN int) error {
	b, err := benchByName(site, scale, site == "bing")
	if err != nil {
		return err
	}
	r, err := experiments.Execute(b)
	if err != nil {
		return err
	}
	d := analysis.Categorize(r.Trace, r.Pixel)
	fmt.Printf("%s: %d unnecessary instructions (%.0f%% categorized)\n", b.Name, d.UnnecessaryTotal, d.CoveragePct)
	for _, c := range analysis.Categories {
		fmt.Printf("  %-16s %s\n", c, report.Pct1(100*d.Share[c]))
	}
	fmt.Println("\nMost-wasteful functions:")
	for _, fw := range analysis.TopWasted(r.Trace, r.Pixel, topN) {
		fmt.Printf("  %9d / %9d  %-14s %s\n", fw.Wasted, fw.Total, fw.Namespace, fw.Name)
	}
	return nil
}

func calibrate(scale float64) error {
	for _, b := range sites.TableII(scale) {
		r, err := experiments.Execute(b)
		if err != nil {
			return err
		}
		fmt.Printf("== %s: total %s, pixel slice %s, loadedIdx %s, markers %d\n",
			b.Name, report.MInstr(r.Pixel.Total), report.Pct1(r.Pixel.Percent()),
			report.MInstr(r.Browser.LoadedIndex), r.Browser.Raster.MarkedTiles)
		for _, th := range r.Trace.Threads {
			fmt.Printf("   %-28s %8s of %10s\n", th.Name,
				report.Pct1(r.Pixel.ThreadPercent(th.ID)), report.MInstr(r.Pixel.ByThread[th.ID]))
		}
		d := analysis.Categorize(r.Trace, r.Pixel)
		fmt.Printf("   categories (cov %.0f%%): ", d.CoveragePct)
		for _, c := range analysis.Categories {
			fmt.Printf("%s %.0f%%  ", c, 100*d.Share[c])
		}
		u := analysis.UnusedBytes(r.Browser)
		fmt.Printf("\n   unused bytes: %s of %s (%.0f%%)\n\n", report.KB(u.UnusedBytes), report.KB(u.TotalBytes), u.Percent())
	}
	return nil
}
