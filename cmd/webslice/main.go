// Command webslice drives the full reproduction: it renders the benchmark
// sites on the simulated browser, runs the slicing profiler, and regenerates
// every table and figure of the paper. Run `webslice repro` for everything,
// or one experiment at a time with -exp.
package main

import (
	"flag"
	"fmt"
	"os"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/experiments"
	"webslice/internal/report"
	"webslice/internal/sites"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = calibrated benchmark size)")
	exp := fs.String("exp", "all", "experiment: table1|table2|fig2|fig4|fig5|bingload|criteria|faults|all")
	faultSeed := fs.Uint64("faultseed", 7, "fault-plan seed for -exp faults")
	site := fs.String("site", "amazon-desktop", "site: amazon-desktop|amazon-mobile|maps|bing")
	tracePath := fs.String("o", "", "write the binary trace to this path (trace command)")
	in := fs.String("i", "", "read a binary trace from this path")
	topN := fs.Int("top", 20, "how many functions to list (categorize command)")
	_ = in
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "repro":
		err = repro(*scale, *exp, *faultSeed)
	case "trace":
		err = doTrace(*scale, *site, *tracePath)
	case "slice":
		err = doSlice(*scale, *site)
	case "categorize":
		err = doCategorize(*scale, *site, *topN)
	case "unused":
		err = reproTableI(*scale)
	case "cpu":
		err = reproFigure2(*scale)
	case "calibrate":
		err = calibrate(*scale)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "webslice:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: webslice <command> [flags]

commands:
  repro      regenerate the paper's tables and figures (-exp selects one)
  trace      render a site and write its binary instruction trace (-site, -o)
  slice      render a site and print pixel/syscall slice statistics (-site)
  categorize render+slice a site and list the most-wasteful functions (-site)
  unused     Table I only (unused JS/CSS bytes)
  cpu        Figure 2 only (main-thread CPU utilization)
  calibrate  print per-thread statistics for tuning workload knobs

flags: -scale 1.0 (workload size), -exp all, -site amazon-desktop, -o/-i trace path,
       -faultseed 7 (fault-plan seed for -exp faults)`)
}

func benchByName(name string, scale float64, browse bool) (sites.Benchmark, error) {
	o := sites.Options{Scale: scale, Browse: browse}
	switch name {
	case "amazon-desktop":
		return sites.AmazonDesktop(o), nil
	case "amazon-mobile":
		return sites.AmazonMobile(o), nil
	case "maps":
		return sites.GoogleMaps(o), nil
	case "bing":
		o.Browse = true
		return sites.Bing(o), nil
	default:
		return sites.Benchmark{}, fmt.Errorf("unknown site %q", name)
	}
}

func repro(scale float64, exp string, faultSeed uint64) error {
	switch exp {
	case "all", "table1", "table2", "fig2", "fig4", "fig5", "bingload", "criteria", "faults":
	default:
		return fmt.Errorf("unknown experiment %q (want table1|table2|fig2|fig4|fig5|bingload|criteria|faults|all)", exp)
	}
	all := exp == "all"
	var runs []*experiments.Run
	needRuns := all || exp == "table2" || exp == "fig4" || exp == "fig5" || exp == "bingload" || exp == "criteria"
	if needRuns {
		fmt.Printf("Running the four Table II benchmarks at scale %.2f...\n\n", scale)
		var err error
		runs, err = experiments.ExecuteTableII(scale)
		if err != nil {
			return err
		}
	}
	if all || exp == "table2" {
		fmt.Println(experiments.TableII(runs).String())
	}
	if all || exp == "table1" {
		if err := reproTableI(scale); err != nil {
			return err
		}
	}
	if all || exp == "fig2" {
		if err := reproFigure2(scale); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		for _, r := range runs {
			fmt.Println(experiments.Figure4(r).String())
		}
	}
	if all || exp == "fig5" {
		fmt.Println(experiments.Figure5(runs).String())
	}
	if all || exp == "bingload" {
		bing := runs[len(runs)-1]
		res, err := experiments.ExecuteBingPartial(bing)
		if err != nil {
			return err
		}
		fmt.Printf("§V-A Bing partial slice: load phase = %s instructions\n", report.MInstr(res.LoadInstr))
		fmt.Printf("  slicing from the page-loaded point:   %.1f%% of load-time instructions in slice\n", res.LoadOnlyPct)
		fmt.Printf("  slicing from the end of the session:  %.1f%% of load-time instructions in slice\n", res.FullSessionPct)
		fmt.Printf("  (browsing makes %.1f%% more of the load work useful; the paper measured 49.8%% vs 50.6%%)\n\n",
			res.FullSessionPct-res.LoadOnlyPct)
	}
	if all || exp == "faults" {
		fmt.Printf("Running fault-injection pairs (clean + faulty) at scale %.2f, seed %d...\n\n", scale, faultSeed)
		pairs, err := experiments.ExecuteFaults(scale, faultSeed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FaultsTable(pairs, faultSeed).String())
		for _, p := range pairs {
			for _, d := range p.Faulty.Browser.Degraded {
				fmt.Printf("  %s: degraded: %s\n", p.Name, d)
			}
		}
		fmt.Println()
	}
	if all || exp == "criteria" {
		t := &report.Table{
			Title:   "Criteria comparison: pixel-buffer vs system-call slicing (§IV-C)",
			Headers: []string{"Benchmark", "Pixel slice", "Syscall slice", "Pixel-only recs", "Extra syscall recs"},
		}
		for _, r := range runs {
			c, err := experiments.ExecuteCriteriaComparison(r)
			if err != nil {
				return err
			}
			t.AddRow(r.Bench.Name, report.Pct1(c.PixelPct), report.Pct1(c.SyscallPct),
				fmt.Sprint(c.PixelOnly), fmt.Sprint(c.ExtraSyscall))
		}
		fmt.Println(t.String())
	}
	return nil
}

func reproTableI(scale float64) error {
	rows, err := experiments.ExecuteTableI(scale)
	if err != nil {
		return err
	}
	fmt.Println(experiments.TableI(rows).String())
	return nil
}

func reproFigure2(scale float64) error {
	chart, err := experiments.Figure2(scale)
	if err != nil {
		return err
	}
	fmt.Println(chart.String())
	return nil
}

func doTrace(scale float64, site, out string) error {
	b, err := benchByName(site, scale, false)
	if err != nil {
		return err
	}
	br := browser.New(b.Site, b.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		return br.Errors[0]
	}
	sum := br.M.Tr.Summarize()
	fmt.Printf("%s: %d instructions, %d syscalls, %d pixel markers, %d functions, %d threads\n",
		b.Name, sum.Total, sum.Syscalls, sum.Markers, sum.Functions, sum.Threads)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := br.M.Tr.Write(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", out)
	}
	return nil
}

func doSlice(scale float64, site string) error {
	b, err := benchByName(site, scale, site == "bing")
	if err != nil {
		return err
	}
	r, err := experiments.Execute(b)
	if err != nil {
		return err
	}
	c, err := experiments.ExecuteCriteriaComparison(r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s instructions\n", b.Name, report.MInstr(r.Pixel.Total))
	fmt.Printf("  pixel slice:   %s\n", report.Pct1(r.Pixel.Percent()))
	fmt.Printf("  syscall slice: %s (extra records: %d)\n", report.Pct1(c.SyscallPct), c.ExtraSyscall)
	for _, th := range r.Trace.Threads {
		fmt.Printf("  %-28s %8s of %s\n", th.Name,
			report.Pct1(r.Pixel.ThreadPercent(th.ID)), report.MInstr(r.Pixel.ByThread[th.ID]))
	}
	return nil
}

func doCategorize(scale float64, site string, topN int) error {
	b, err := benchByName(site, scale, site == "bing")
	if err != nil {
		return err
	}
	r, err := experiments.Execute(b)
	if err != nil {
		return err
	}
	d := analysis.Categorize(r.Trace, r.Pixel)
	fmt.Printf("%s: %d unnecessary instructions (%.0f%% categorized)\n", b.Name, d.UnnecessaryTotal, d.CoveragePct)
	for _, c := range analysis.Categories {
		fmt.Printf("  %-16s %s\n", c, report.Pct1(100*d.Share[c]))
	}
	fmt.Println("\nMost-wasteful functions:")
	for _, fw := range analysis.TopWasted(r.Trace, r.Pixel, topN) {
		fmt.Printf("  %9d / %9d  %-14s %s\n", fw.Wasted, fw.Total, fw.Namespace, fw.Name)
	}
	return nil
}

func calibrate(scale float64) error {
	for _, b := range sites.TableII(scale) {
		r, err := experiments.Execute(b)
		if err != nil {
			return err
		}
		fmt.Printf("== %s: total %s, pixel slice %s, loadedIdx %s, markers %d\n",
			b.Name, report.MInstr(r.Pixel.Total), report.Pct1(r.Pixel.Percent()),
			report.MInstr(r.Browser.LoadedIndex), r.Browser.Raster.MarkedTiles)
		for _, th := range r.Trace.Threads {
			fmt.Printf("   %-28s %8s of %10s\n", th.Name,
				report.Pct1(r.Pixel.ThreadPercent(th.ID)), report.MInstr(r.Pixel.ByThread[th.ID]))
		}
		d := analysis.Categorize(r.Trace, r.Pixel)
		fmt.Printf("   categories (cov %.0f%%): ", d.CoveragePct)
		for _, c := range analysis.Categories {
			fmt.Printf("%s %.0f%%  ", c, 100*d.Share[c])
		}
		u := analysis.UnusedBytes(r.Browser)
		fmt.Printf("\n   unused bytes: %s of %s (%.0f%%)\n\n", report.KB(u.UnusedBytes), report.KB(u.TotalBytes), u.Percent())
	}
	return nil
}
