// Client mode: webslice submit|status|result|scatter talk to a running
// websliced (standalone or cluster coordinator) over its HTTP API, so the
// batch CLI and the service share one workflow. Submission honors the
// server's backpressure contract — a 429 is retried after its Retry-After
// hint (or a capped exponential backoff) — and result polling backs off
// exponentially instead of hammering the daemon, all on an injectable
// clock so the schedules are testable without real sleeps.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"webslice/internal/obs"
	"webslice/internal/report"
	"webslice/internal/service"
)

// Poll/backoff shape for the client's HTTP loops.
const (
	pollBase = 100 * time.Millisecond
	pollMax  = 2 * time.Second
)

// client talks to one websliced base URL. The clock seam is what the
// backoff tests hang off; production passes service.SystemClock.
type client struct {
	base    string
	hc      *http.Client
	clock   service.Clock
	maxWait time.Duration // total budget for one command; 0 = no limit
}

func newClient(addr string, maxWait time.Duration) *client {
	return &client{base: addr, hc: http.DefaultClient, clock: service.SystemClock, maxWait: maxWait}
}

// deadline materializes the -max-wait budget; ok reports whether a
// deadline exists at all.
func (c *client) deadline() (time.Time, bool) {
	if c.maxWait <= 0 {
		return time.Time{}, false
	}
	return c.clock.Now().Add(c.maxWait), true
}

// sleepOrExpire sleeps d (trimmed to the deadline) and returns an error
// once the budget is exhausted.
func (c *client) sleepOrExpire(d time.Duration, deadline time.Time, has bool, what string) error {
	if has {
		left := deadline.Sub(c.clock.Now())
		if left <= 0 {
			return fmt.Errorf("gave up %s after -max-wait %v", what, c.maxWait)
		}
		if d > left {
			d = left
		}
	}
	c.clock.Sleep(d, nil)
	return nil
}

// retryAfter parses a 429's Retry-After header (delay-seconds form) into
// a duration; 0 when absent or unparsable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// submitOnce posts the job and returns (id, retry, err): retry is non-nil
// when the server answered 429 and the request should be repeated after
// that delay.
func (c *client) submitOnce(post func() (*http.Response, error)) (string, *time.Duration, error) {
	resp, err := post()
	if err != nil {
		return "", nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		d := retryAfter(resp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return "", &d, nil
	}
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := decodeJSON(resp, http.StatusAccepted, &out); err != nil {
		return "", nil, err
	}
	return out.ID, nil, nil
}

// submit posts a job, honoring Retry-After on 429 responses with capped
// exponential backoff between attempts, within the -max-wait budget.
func (c *client) submit(post func() (*http.Response, error)) (string, error) {
	deadline, has := c.deadline()
	backoff := pollBase
	for {
		id, retry, err := c.submitOnce(post)
		if err != nil {
			return "", err
		}
		if retry == nil {
			return id, nil
		}
		// The server's hint wins when it is longer than our own schedule.
		d := backoff
		if *retry > d {
			d = *retry
		}
		fmt.Fprintf(os.Stderr, "queue full, retrying in %v...\n", d)
		if err := c.sleepOrExpire(d, deadline, has, "submitting (server busy)"); err != nil {
			return "", err
		}
		if backoff *= 2; backoff > pollMax {
			backoff = pollMax
		}
	}
}

// clientSubmit posts a job: a binary trace file when tracePath is set,
// otherwise a named site. With wait it polls (with capped exponential
// backoff) until the job finishes and prints the result.
func (c *client) clientSubmit(site string, scale float64, criteria, tracePath string, wait, verify bool) error {
	var post func() (*http.Response, error)
	if tracePath != "" {
		body, err := os.ReadFile(tracePath)
		if err != nil {
			return err
		}
		url := c.base + "/jobs/trace?criteria=" + criteria
		if verify {
			url += "&verify=1"
		}
		post = func() (*http.Response, error) {
			return c.hc.Post(url, "application/octet-stream", bytes.NewReader(body))
		}
	} else {
		spec, _ := json.Marshal(service.Spec{Site: site, Scale: scale, Criteria: criteria, Verify: verify})
		post = func() (*http.Response, error) {
			return c.hc.Post(c.base+"/jobs", "application/json", bytes.NewReader(spec))
		}
	}
	id, err := c.submit(post)
	if err != nil {
		return err
	}
	fmt.Println(id)
	if !wait {
		return nil
	}
	if err := c.await(id); err != nil {
		return err
	}
	return c.clientResult(id)
}

// await polls a job until it is terminal, backing off exponentially from
// pollBase to pollMax, within the -max-wait budget.
func (c *client) await(id string) error {
	deadline, has := c.deadline()
	backoff := pollBase
	for {
		info, err := c.fetchStatus(id)
		if err != nil {
			return err
		}
		if info.Status.Terminal() {
			if info.Status != service.StatusDone {
				return fmt.Errorf("job %s %s: %s", id, info.Status, info.Error)
			}
			return nil
		}
		if err := c.sleepOrExpire(backoff, deadline, has, fmt.Sprintf("waiting for job %s", id)); err != nil {
			return err
		}
		if backoff *= 2; backoff > pollMax {
			backoff = pollMax
		}
	}
}

// clientStatus prints one job's status line.
func (c *client) clientStatus(id string) error {
	info, err := c.fetchStatus(id)
	if err != nil {
		return err
	}
	fmt.Printf("%s  %-9s site=%s criteria=%s queue=%.0fms run=%.0fms cache_hit=%t", // one line per job
		info.ID, info.Status, orDash(siteLabel(info)), info.Criteria, info.QueueMs, info.RunMs, info.CacheHit)
	if info.Node != "" {
		fmt.Printf(" node=%s", info.Node)
	}
	if info.Reroutes > 0 {
		fmt.Printf(" reroutes=%d", info.Reroutes)
	}
	if info.Error != "" {
		fmt.Printf(" error=%q", info.Error)
	}
	fmt.Println()
	return nil
}

func siteLabel(info service.Info) string {
	if info.Site == "" && info.Seed != 0 {
		return fmt.Sprintf("rand-%d", info.Seed)
	}
	return info.Site
}

// clientResult fetches and pretty-prints a finished job's result.
func (c *client) clientResult(id string) error {
	resp, err := c.hc.Get(c.base + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	var res service.Result
	if err := decodeJSON(resp, http.StatusOK, &res); err != nil {
		return err
	}
	fmt.Printf("%s: %s instructions, %s criteria\n", id, report.MInstr(res.Total), res.Criteria)
	fmt.Printf("  slice: %s (%d records)", report.Pct1(res.SlicePct), res.SliceCount)
	if res.CacheHit {
		fmt.Printf("  [served from artifact store]")
	}
	if res.Verified {
		fmt.Printf("  [invariants verified]")
	}
	fmt.Println()
	if res.TraceKey != "" {
		fmt.Printf("  trace key: %s\n", res.TraceKey)
	}
	if res.SliceDigest != "" {
		fmt.Printf("  slice digest: %s\n", res.SliceDigest)
	}
	for _, th := range res.Threads {
		pct := 0.0
		if th.Total > 0 {
			pct = 100 * float64(th.Sliced) / float64(th.Total)
		}
		fmt.Printf("  %-28s %8s of %s\n", th.Name, report.Pct1(pct), report.MInstr(th.Total))
	}
	if len(res.Categories) > 0 {
		cats := make([]string, 0, len(res.Categories))
		for c := range res.Categories {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		fmt.Println("  categories of unnecessary work:")
		for _, c := range cats {
			fmt.Printf("    %-16s %s\n", c, report.Pct1(100*res.Categories[c]))
		}
	}
	return nil
}

// clientSpans fetches a job's recorded span tree (/jobs/{id}/trace) and
// renders it as an indented tree with wall-clock durations, attributes,
// and events. Against a coordinator the tree is the merged cross-node
// trace: its routing spans stitched to the owning worker's execution
// spans by the propagated trace ID. Requires the daemon to run with
// -trace-spans; a daemon without tracing answers 404.
func (c *client) clientSpans(id string) error {
	if id == "" {
		return fmt.Errorf("spans: no job id (use -id <job> or `webslice spans <job>`)")
	}
	resp, err := c.hc.Get(c.base + "/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	var spans []obs.SpanData
	if err := decodeJSON(resp, http.StatusOK, &spans); err != nil {
		return err
	}
	obs.RenderTree(os.Stdout, spans)
	return nil
}

// clientScatter fans a comma-separated site list through a coordinator's
// /batch endpoint and (with wait) gathers the results in site order.
func (c *client) clientScatter(sitesCSV string, scale float64, criteria string, wait bool) error {
	names := splitSites(sitesCSV)
	if len(names) == 0 {
		return fmt.Errorf("scatter: no sites (use -sites a,b,c)")
	}
	specs := make([]service.Spec, len(names))
	for i, n := range names {
		specs[i] = service.Spec{Site: n, Scale: scale, Criteria: criteria}
	}
	body, _ := json.Marshal(specs)
	resp, err := c.hc.Post(c.base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var out struct {
		IDs   []string `json:"ids"`
		Error string   `json:"error"`
	}
	if err := decodeJSON(resp, http.StatusAccepted, &out); err != nil {
		return err
	}
	if len(out.IDs) != len(names) {
		return fmt.Errorf("scatter: server acked %d of %d jobs", len(out.IDs), len(names))
	}
	for i, id := range out.IDs {
		fmt.Printf("%s  %s\n", id, names[i])
	}
	if !wait {
		return nil
	}
	// Gather in site order: results print deterministically no matter
	// which worker finished first.
	for i, id := range out.IDs {
		if err := c.await(id); err != nil {
			return fmt.Errorf("site %s: %w", names[i], err)
		}
		fmt.Printf("== %s\n", names[i])
		if err := c.clientResult(id); err != nil {
			return err
		}
	}
	return nil
}

func splitSites(csv string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(csv); i++ {
		if i == len(csv) || csv[i] == ',' {
			if s := csv[start:i]; s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	return out
}

// clientQuarantined lists the daemon's poisoned-job list: jobs pulled from
// rotation after panicking twice instead of crash-looping the service.
func (c *client) clientQuarantined() error {
	resp, err := c.hc.Get(c.base + "/jobs/quarantined")
	if err != nil {
		return err
	}
	var jobs []service.Info
	if err := decodeJSON(resp, http.StatusOK, &jobs); err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no quarantined jobs")
		return nil
	}
	for _, info := range jobs {
		fmt.Printf("%s  quarantined site=%s criteria=%s attempts=%d error=%q\n",
			info.ID, orDash(siteLabel(info)), info.Criteria, info.Attempts, info.Error)
	}
	return nil
}

func (c *client) fetchStatus(id string) (service.Info, error) {
	resp, err := c.hc.Get(c.base + "/jobs/" + id)
	if err != nil {
		return service.Info{}, err
	}
	var info service.Info
	err = decodeJSON(resp, http.StatusOK, &info)
	return info, err
}

// decodeJSON consumes a response, enforcing the expected status and
// surfacing the server's {"error": ...} payload otherwise.
func decodeJSON(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
