// Client mode: webslice submit|status|result talk to a running websliced
// over its HTTP API, so the batch CLI and the service share one workflow.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"webslice/internal/report"
	"webslice/internal/service"
)

// clientSubmit posts a job: a binary trace file when tracePath is set,
// otherwise a named site. With wait it polls until the job finishes and
// prints the result.
func clientSubmit(addr, site string, scale float64, criteria, tracePath string, wait, verify bool) error {
	var resp *http.Response
	var err error
	if tracePath != "" {
		body, rerr := os.ReadFile(tracePath)
		if rerr != nil {
			return rerr
		}
		url := addr + "/jobs/trace?criteria=" + criteria
		if verify {
			url += "&verify=1"
		}
		resp, err = http.Post(url, "application/octet-stream", bytes.NewReader(body))
	} else {
		spec, _ := json.Marshal(service.Spec{Site: site, Scale: scale, Criteria: criteria, Verify: verify})
		resp, err = http.Post(addr+"/jobs", "application/json", bytes.NewReader(spec))
	}
	if err != nil {
		return err
	}
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := decodeJSON(resp, http.StatusAccepted, &out); err != nil {
		return err
	}
	fmt.Println(out.ID)
	if !wait {
		return nil
	}
	for {
		info, err := fetchStatus(addr, out.ID)
		if err != nil {
			return err
		}
		if info.Status.Terminal() {
			if info.Status != service.StatusDone {
				return fmt.Errorf("job %s %s: %s", out.ID, info.Status, info.Error)
			}
			return clientResult(addr, out.ID)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// clientStatus prints one job's status line.
func clientStatus(addr, id string) error {
	info, err := fetchStatus(addr, id)
	if err != nil {
		return err
	}
	fmt.Printf("%s  %-9s site=%s criteria=%s queue=%.0fms run=%.0fms cache_hit=%t", // one line per job
		info.ID, info.Status, orDash(info.Site), info.Criteria, info.QueueMs, info.RunMs, info.CacheHit)
	if info.Error != "" {
		fmt.Printf(" error=%q", info.Error)
	}
	fmt.Println()
	return nil
}

// clientResult fetches and pretty-prints a finished job's result.
func clientResult(addr, id string) error {
	resp, err := http.Get(addr + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	var res service.Result
	if err := decodeJSON(resp, http.StatusOK, &res); err != nil {
		return err
	}
	fmt.Printf("%s: %s instructions, %s criteria\n", id, report.MInstr(res.Total), res.Criteria)
	fmt.Printf("  slice: %s (%d records)", report.Pct1(res.SlicePct), res.SliceCount)
	if res.CacheHit {
		fmt.Printf("  [served from artifact store]")
	}
	if res.Verified {
		fmt.Printf("  [invariants verified]")
	}
	fmt.Println()
	if res.TraceKey != "" {
		fmt.Printf("  trace key: %s\n", res.TraceKey)
	}
	for _, th := range res.Threads {
		pct := 0.0
		if th.Total > 0 {
			pct = 100 * float64(th.Sliced) / float64(th.Total)
		}
		fmt.Printf("  %-28s %8s of %s\n", th.Name, report.Pct1(pct), report.MInstr(th.Total))
	}
	if len(res.Categories) > 0 {
		cats := make([]string, 0, len(res.Categories))
		for c := range res.Categories {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		fmt.Println("  categories of unnecessary work:")
		for _, c := range cats {
			fmt.Printf("    %-16s %s\n", c, report.Pct1(100*res.Categories[c]))
		}
	}
	return nil
}

// clientQuarantined lists the daemon's poisoned-job list: jobs pulled from
// rotation after panicking twice instead of crash-looping the service.
func clientQuarantined(addr string) error {
	resp, err := http.Get(addr + "/jobs/quarantined")
	if err != nil {
		return err
	}
	var jobs []service.Info
	if err := decodeJSON(resp, http.StatusOK, &jobs); err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no quarantined jobs")
		return nil
	}
	for _, info := range jobs {
		fmt.Printf("%s  quarantined site=%s criteria=%s attempts=%d error=%q\n",
			info.ID, orDash(info.Site), info.Criteria, info.Attempts, info.Error)
	}
	return nil
}

func fetchStatus(addr, id string) (service.Info, error) {
	resp, err := http.Get(addr + "/jobs/" + id)
	if err != nil {
		return service.Info{}, err
	}
	var info service.Info
	err = decodeJSON(resp, http.StatusOK, &info)
	return info, err
}

// decodeJSON consumes a response, enforcing the expected status and
// surfacing the server's {"error": ...} payload otherwise.
func decodeJSON(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
