package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"webslice/internal/experiments"
	"webslice/internal/service"
)

// TestMultiNodeSmoke is the cluster's end-to-end exercise with real
// processes: it builds the daemon, boots a coordinator fronting two
// workers on loopback ports, scatters the golden corpus through the
// coordinator, SIGKILLs one worker mid-run, and asserts that every acked
// job still reaches a terminal state with its slice digest matching the
// corpus's pinned value. It needs `go build` and a couple of minutes, so
// it only runs when ci.sh (or a developer) opts in:
//
//	WEBSLICE_CLUSTER_SMOKE=1 go test -run TestMultiNodeSmoke ./cmd/websliced
func TestMultiNodeSmoke(t *testing.T) {
	if os.Getenv("WEBSLICE_CLUSTER_SMOKE") != "1" {
		t.Skip("set WEBSLICE_CLUSTER_SMOKE=1 to run the real-process cluster smoke test")
	}

	bin := filepath.Join(t.TempDir(), "websliced")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building websliced: %v\n%s", err, out)
	}

	addrs := freeAddrs(t, 3)
	w1 := startDaemon(t, bin, "-addr", addrs[0], "-store", "", "-workers", "2")
	startDaemon(t, bin, "-addr", addrs[1], "-store", "", "-workers", "2")
	peers := "http://" + addrs[0] + ",http://" + addrs[1]
	startDaemon(t, bin, "-addr", addrs[2], "-store", "", "-workers", "2",
		"-coordinator", "-peers", peers, "-probe-interval", "50ms", "-probe-fails", "2")
	base := "http://" + addrs[2]
	for _, a := range addrs {
		waitHealthy(t, "http://"+a)
	}

	corpus, err := experiments.LoadGolden("../../examples/golden/corpus.json")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, e := range corpus.Sites {
		spec, _ := json.Marshal(service.Spec{Site: e.Name, Scale: e.Scale, Seed: e.Seed, Criteria: "pixels"})
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			t.Fatalf("submit %s: %v", e.Label(), err)
		}
		var out struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted || out.ID == "" {
			t.Fatalf("submit %s: HTTP %d (%v)", e.Label(), resp.StatusCode, err)
		}
		ids = append(ids, out.ID)
	}

	// Kill a worker while the batch is in flight. Any job it owned — even
	// one it had already finished — must be recomputed elsewhere.
	if err := w1.Process.Kill(); err != nil {
		t.Fatalf("killing worker 1: %v", err)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for i, e := range corpus.Sites {
		digest := awaitDigest(t, base, ids[i], e.Label(), deadline)
		if digest != e.Pixels {
			t.Errorf("%s: digest %s, want pinned %s", e.Label(), digest, e.Pixels)
		}
	}
}

// awaitDigest polls one coordinator job to completion and returns its
// slice digest.
func awaitDigest(t *testing.T, base, id, label string, deadline time.Time) string {
	t.Helper()
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatalf("%s: status poll: %v", label, err)
		}
		var info service.Info
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decoding status: %v", label, err)
		}
		if info.Status.Terminal() {
			if info.Status != service.StatusDone {
				t.Fatalf("%s: job %s ended %s: %s", label, id, info.Status, info.Error)
			}
			resp, err := http.Get(base + "/jobs/" + id + "/result")
			if err != nil {
				t.Fatalf("%s: result fetch: %v", label, err)
			}
			var res service.Result
			err = json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: result: HTTP %d (%v)", label, resp.StatusCode, err)
			}
			return res.SliceDigest
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s: job %s not terminal before deadline", label, id)
	return ""
}

// freeAddrs reserves n distinct loopback addresses by binding and
// releasing ephemeral ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l.Addr().String()
		l.Close()
	}
	return out
}

// startDaemon launches one websliced process and registers its teardown.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %v: %v", args, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("daemon %v logs:\n%s", args, logs.String())
		}
	})
	return cmd
}

// waitHealthy blocks until a daemon answers /healthz with 200.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
}
