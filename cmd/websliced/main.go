// Command websliced serves the slicing profiler over HTTP: clients submit
// a named benchmark site or a binary trace, a bounded queue feeds a pool
// of parallel workers, and a content-addressed artifact store makes a
// repeat slice of an identical trace a cache hit that skips the forward
// pass entirely. See `webslice submit|status|result` for the client side.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webslice/internal/service"
	"webslice/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:8077", "listen address")
	dir := flag.String("store", ".websliced-store", "artifact store directory (empty = in-memory only)")
	memMB := flag.Int64("mem", 256, "artifact store in-memory LRU budget in MiB")
	workers := flag.Int("workers", 4, "parallel slicing workers")
	queue := flag.Int("queue", 64, "bounded job-queue depth (full queue returns 429)")
	verify := flag.Bool("verify", false, "run the structural slice oracles on every job's result")
	flag.Parse()

	if err := run(*addr, *dir, *memMB<<20, *workers, *queue, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "websliced:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, memBytes int64, workers, queue int, verify bool) error {
	st, err := store.Open(dir, memBytes)
	if err != nil {
		return err
	}
	mgr := service.New(service.Config{Workers: workers, QueueDepth: queue, Store: st, Verify: verify})

	// The service API at /, plus net/http/pprof under /debug/pprof/ so a
	// live daemon can be profiled (CPU, heap, goroutines) without a restart.
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("websliced: listening on %s (workers=%d queue=%d store=%q)", addr, workers, queue, dir)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain every
	// accepted job before exiting.
	log.Printf("websliced: shutting down, draining jobs...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("websliced: http shutdown: %v", err)
	}
	mgr.Close()
	log.Printf("websliced: drained, bye")
	return nil
}
