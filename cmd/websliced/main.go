// Command websliced serves the slicing profiler over HTTP: clients submit
// a named benchmark site or a binary trace, a bounded queue feeds a pool
// of parallel workers, and a content-addressed artifact store makes a
// repeat slice of an identical trace a cache hit that skips the forward
// pass entirely. With -journal, every acknowledged submission is written
// to a write-ahead log before the ID is returned, so a crash (or a drain
// that runs out of time) loses no accepted work — the next boot replays
// and finishes it. See `webslice submit|status|result` for the client side.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webslice/internal/service"
	"webslice/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:8077", "listen address")
	dir := flag.String("store", ".websliced-store", "artifact store directory (empty = in-memory only)")
	memMB := flag.Int64("mem", 256, "artifact store in-memory LRU budget in MiB")
	workers := flag.Int("workers", 4, "parallel slicing workers")
	queue := flag.Int("queue", 64, "bounded job-queue depth (full queue returns 429)")
	verify := flag.Bool("verify", false, "run the structural slice oracles on every job's result")
	journal := flag.String("journal", "", "write-ahead job journal path (empty = no crash durability)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
	maxTraceMB := flag.Int64("max-trace-mb", 0, "reject submitted traces larger than this many MiB (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget; unfinished jobs stay in the journal")
	flag.Parse()

	cfg := service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		Verify:        *verify,
		JobTimeout:    *jobTimeout,
		MaxTraceBytes: *maxTraceMB << 20,
	}
	if err := run(*addr, *dir, *memMB<<20, *journal, *drainTimeout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "websliced:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, memBytes int64, journalPath string, drainTimeout time.Duration, cfg service.Config) error {
	st, err := store.Open(dir, memBytes)
	if err != nil {
		return err
	}
	cfg.Store = st
	if journalPath != "" {
		j, pending, err := service.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		if n := j.Salvaged(); n > 0 {
			log.Printf("websliced: journal had a corrupt/torn tail, salvaged around %d bytes", n)
		}
		if len(pending) > 0 {
			log.Printf("websliced: replaying %d unfinished job(s) from %s", len(pending), journalPath)
		}
		cfg.Journal, cfg.Resume = j, pending
	}
	mgr := service.New(cfg)

	// The service API at /, plus net/http/pprof under /debug/pprof/ so a
	// live daemon can be profiled (CPU, heap, goroutines) without a restart.
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("websliced: listening on %s (workers=%d queue=%d store=%q journal=%q)",
			addr, cfg.Workers, cfg.QueueDepth, dir, journalPath)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain accepted
	// jobs within the budget. Jobs the drain cannot finish in time are not
	// abandoned — they stay pending in the journal and the next boot
	// re-runs them (without a journal they are lost, as before).
	log.Printf("websliced: shutting down, draining jobs (budget %v)...", drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("websliced: http shutdown: %v", err)
	}
	if mgr.Drain(drainTimeout) {
		log.Printf("websliced: drained, bye")
	} else {
		log.Printf("websliced: drain budget expired; unfinished jobs remain in the journal")
	}
	return nil
}
