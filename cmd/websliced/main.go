// Command websliced serves the slicing profiler over HTTP: clients submit
// a named benchmark site or a binary trace, a bounded queue feeds a pool
// of parallel workers, and a content-addressed artifact store makes a
// repeat slice of an identical trace a cache hit that skips the forward
// pass entirely. With -journal, every acknowledged submission is written
// to a write-ahead log before the ID is returned, so a crash (or a drain
// that runs out of time) loses no accepted work — the next boot replays
// and finishes it.
//
// With -coordinator -peers=..., the daemon fronts a cluster instead of
// (only) slicing itself: a consistent-hash ring over the peers assigns
// every job an owner keyed by its trace digest, submissions are routed to
// the owner over the same HTTP API the workers already serve, and
// status/result polls are proxied transparently. Dead workers are probed
// out of the ring and their pending jobs re-routed; the coordinator's own
// manager executes whatever the ring cannot place. See README "Cluster
// mode" and `webslice submit|status|result|scatter` for the client side.
//
// With -trace-spans N, every job records a causally-linked span tree —
// routing, queue wait, attempts, store lookups, render, slice phases —
// in a bounded in-memory ring, served raw at GET /debug/spans (JSONL)
// and per job at GET /jobs/{id}/trace; `webslice spans <job>` renders
// the tree. Tracing is off by default and costs nothing when off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webslice/internal/cluster"
	"webslice/internal/obs"
	"webslice/internal/service"
	"webslice/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:8077", "listen address")
	dir := flag.String("store", ".websliced-store", "artifact store directory (empty = in-memory only)")
	memMB := flag.Int64("mem", 256, "artifact store in-memory LRU budget in MiB")
	workers := flag.Int("workers", 4, "parallel slicing workers")
	sliceWorkers := flag.Int("slice-workers", 0, "segmented backward-pass workers per job (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job-queue depth (full queue returns 429)")
	verify := flag.Bool("verify", false, "run the structural slice oracles on every job's result")
	journal := flag.String("journal", "", "write-ahead job journal path (empty = no crash durability)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
	maxTraceMB := flag.Int64("max-trace-mb", 0, "reject submitted traces larger than this many MiB (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget; unfinished jobs stay in the journal")
	node := flag.String("node", "", "this node's advertised base URL in a cluster (default http://<addr>)")
	coordinator := flag.Bool("coordinator", false, "serve the cluster coordinator API, routing jobs across -peers")
	peers := flag.String("peers", "", "comma-separated worker base URLs forming the ring (coordinator mode); include this node's -node URL to give the coordinator a ring share")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "peer health-probe period (coordinator mode)")
	probeFails := flag.Int("probe-fails", cluster.DefaultFailThreshold, "consecutive probe failures that evict a peer (coordinator mode)")
	traceSpans := flag.Int("trace-spans", 0, "span ring capacity for request tracing (0 = tracing off; try 4096); spans at GET /debug/spans and /jobs/{id}/trace")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error")
	flag.Parse()

	self := *node
	if self == "" {
		self = "http://" + *addr
	}
	cfg := service.Config{
		Workers:       *workers,
		SliceWorkers:  *sliceWorkers,
		QueueDepth:    *queue,
		Verify:        *verify,
		JobTimeout:    *jobTimeout,
		MaxTraceBytes: *maxTraceMB << 20,
		Node:          self,
		Logger:        newLogger(*logLevel),
	}
	if *traceSpans > 0 {
		cfg.Tracer = obs.New(*traceSpans, nil)
	}
	cl := clusterConfig{
		coordinator:   *coordinator,
		self:          self,
		peers:         splitPeers(*peers),
		probeInterval: *probeInterval,
		probeFails:    *probeFails,
	}
	if err := run(*addr, *dir, *memMB<<20, *journal, *drainTimeout, cfg, cl); err != nil {
		fmt.Fprintln(os.Stderr, "websliced:", err)
		os.Exit(1)
	}
}

type clusterConfig struct {
	coordinator   bool
	self          string
	peers         []string
	probeInterval time.Duration
	probeFails    int
}

// newLogger builds the daemon's structured logger: text key=value pairs
// on stderr, filtered at the -log-level threshold. Job-scoped records
// carry trace and job IDs so a log line can be joined against its span
// tree (`webslice spans <job>`).
func newLogger(level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "websliced: invalid -log-level %q, using info\n", level)
		lvl = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func run(addr, dir string, memBytes int64, journalPath string, drainTimeout time.Duration, cfg service.Config, cl clusterConfig) error {
	if len(cl.peers) > 0 && !cl.coordinator {
		return errors.New("-peers requires -coordinator")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	st, err := store.Open(dir, memBytes)
	if err != nil {
		return err
	}
	cfg.Store = st
	if journalPath != "" {
		j, pending, err := service.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		if n := j.Salvaged(); n > 0 {
			logger.Warn("journal had a corrupt/torn tail", "salvaged_bytes", n, "path", journalPath)
		}
		if len(pending) > 0 {
			logger.Info("replaying unfinished jobs from journal", "count", len(pending), "path", journalPath)
		}
		cfg.Journal, cfg.Resume = j, pending
	}
	mgr := service.New(cfg)

	// The service API at /, plus net/http/pprof under /debug/pprof/ so a
	// live daemon can be profiled (CPU, heap, goroutines) without a restart.
	mux := http.NewServeMux()
	var co *cluster.Coordinator
	if cl.coordinator {
		co = cluster.New(cluster.Config{
			Self:          cl.self,
			Local:         mgr,
			Peers:         cl.peers,
			ProbeInterval: cl.probeInterval,
			FailThreshold: cl.probeFails,
			Logger:        cfg.Logger, // tracer is inherited from the local manager
		})
		co.Start()
		mux.Handle("/", cluster.NewHandler(co))
	} else {
		mux.Handle("/", service.NewHandler(mgr))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if cl.coordinator {
			logger.Info("coordinator listening", "self", cl.self, "addr", addr, "peers", cl.peers,
				"workers", cfg.Workers, "queue", cfg.QueueDepth, "store", dir, "journal", journalPath,
				"tracing", cfg.Tracer != nil)
		} else {
			logger.Info("listening", "addr", addr, "workers", cfg.Workers, "queue", cfg.QueueDepth,
				"store", dir, "journal", journalPath, "tracing", cfg.Tracer != nil)
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain accepted
	// jobs within the budget. Jobs the drain cannot finish in time are not
	// abandoned — they stay pending in the journal and the next boot
	// re-runs them (without a journal they are lost, as before).
	logger.Info("shutting down, draining jobs", "budget", drainTimeout)
	if co != nil {
		co.Stop()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown", "error", err)
	}
	if mgr.Drain(drainTimeout) {
		logger.Info("drained, bye")
	} else {
		logger.Warn("drain budget expired; unfinished jobs remain in the journal")
	}
	return nil
}
