// Quickstart: trace a small hand-written program on the traced machine,
// slice it backward from a pixel-buffer criterion, and print what the
// profiler found. This is the paper's methodology in twenty lines: only the
// computation that reaches the marked buffer is "necessary".
package main

import (
	"fmt"
	"log"

	"webslice/internal/core"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func main() {
	m := vm.New()
	m.Thread(0, "main")

	framebuffer := m.Tile.Alloc(64)
	scratch := m.Heap.Alloc(64)

	render := m.Func("render", "app")
	telemetry := m.Func("telemetry", "app/debug")

	// Useful work: compute a gradient and write it to the framebuffer.
	m.Call(render, func() {
		color := m.Const(0x20)
		for px := 0; px < 16; px++ {
			m.At("px")
			color = m.AddImm(color, 3)
			m.Store(framebuffer+vmem.Addr(px*4), 4, color)
		}
	})
	// Wasted work: telemetry counters nothing ever displays.
	m.Call(telemetry, func() {
		count := m.Const(0)
		for i := 0; i < 32; i++ {
			m.At("tick")
			count = m.AddImm(count, 1)
			m.StoreU32(scratch, count)
		}
	})
	// The slicing criterion: the framebuffer now holds final pixel values.
	m.MarkPixels(vmem.Range{Addr: framebuffer, Size: 64})

	p := core.NewProfiler(m.Tr)
	res, err := p.PixelSlice()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d instructions\n", res.Total)
	fmt.Printf("pixel slice: %d instructions (%.1f%%)\n", res.SliceCount, res.Percent())
	for fn, total := range res.ByFunc {
		fmt.Printf("  %-24s %4d / %4d in slice\n", m.Tr.FuncName(fn), res.SliceByFunc[fn], total)
	}
}
