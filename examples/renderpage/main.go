// Renderpage: run the full simulated browser on a custom page and print the
// pipeline statistics plus the per-thread pixel-slice breakdown — the
// paper's Table II for a page of your own.
package main

import (
	"fmt"
	"log"

	"webslice/internal/browser"
	"webslice/internal/content"
	"webslice/internal/core"
)

func main() {
	site := &content.Site{
		Name:      "demo",
		URL:       "https://demo.example/",
		ViewportW: 800,
		ViewportH: 600,
	}
	site.Add(&content.Resource{URL: site.URL, Type: content.HTML, LatencyMs: 50, Body: []byte(`<html><head>
<link rel="stylesheet" href="https://demo.example/site.css">
<script src="https://demo.example/app.js"></script>
</head><body class="page">
<div id="banner" class="banner">Welcome to the demo page</div>
<div id="main" class="card"><p>This paragraph is rendered, rasterized, and displayed.</p></div>
<div id="basement" class="deep">Content far below the fold that nobody scrolls to.</div>
</body></html>`)})
	site.Add(&content.Resource{URL: "https://demo.example/site.css", Type: content.CSS, LatencyMs: 40, Body: []byte(`
.page { background: #ffffff; }
.banner { background: #003366; color: white; height: 60px; padding: 10px; }
.card { background: #f2f2f2; margin: 12px; padding: 16px; }
.deep { margin: 4000px; height: 500px; background: #ff00ff; }
.never-used { border-width: 3px; color: red; }`)})
	site.Add(&content.Resource{URL: "https://demo.example/app.js", Type: content.JS, LatencyMs: 60, Body: []byte(`
function decorate() {
  var b = document.getElementById('banner');
  b.style.background = 3368703;
  return 1;
}
function deadHelper(n) {
  var s = 0;
  for (var i = 0; i < 200; i = i + 1) { s = s + i * i; }
  return s;
}
var ok = decorate();`)})

	b := browser.New(site, browser.DefaultProfile())
	b.RunSession()
	if len(b.Errors) > 0 {
		log.Fatal(b.Errors[0])
	}

	sum := b.M.Tr.Summarize()
	fmt.Printf("rendered %q: %d DOM nodes, %d instructions, %d pixel markers\n",
		site.Name, b.DOM.Count(), sum.Total, sum.Markers)

	p := core.NewProfiler(b.M.Tr)
	res, err := p.PixelSlice()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pixel slice: %.1f%% of all instructions\n", res.Percent())
	for _, th := range b.M.Tr.Threads {
		fmt.Printf("  %-28s %6.1f%% of %d\n", th.Name, res.ThreadPercent(th.ID), res.ByThread[th.ID])
	}

	// Coverage: which JS/CSS went unused?
	for _, f := range b.JS.Funcs {
		fmt.Printf("  js %-28s executed=%v (%d bytes)\n", f.Name, f.Executed, f.SrcBytes())
	}
	for _, sh := range b.CSS.Sheets {
		fmt.Printf("  css sheet: %d/%d bytes used\n", sh.UsedBytes(), sh.Bytes)
	}
}
