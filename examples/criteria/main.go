// Criteria: contrast the paper's two slicing criteria on a page that
// performs a non-visual network transaction. The pixel-based slice ignores
// the analytics beacon entirely; the syscall-based slice captures it —
// and contains the pixel slice, as §IV-C argues.
package main

import (
	"fmt"
	"log"

	"webslice/internal/browser"
	"webslice/internal/content"
	"webslice/internal/core"
)

func main() {
	site := &content.Site{
		Name:      "bank",
		URL:       "https://bank.example/",
		ViewportW: 640,
		ViewportH: 480,
	}
	site.Add(&content.Resource{URL: site.URL, Type: content.HTML, LatencyMs: 40, Body: []byte(`<html><head>
<script src="https://bank.example/app.js"></script>
</head><body class="page">
<div id="balance" class="card">Balance: $1,024</div>
</body></html>`)})
	site.Add(&content.Resource{URL: "https://bank.example/app.js", Type: content.JS, LatencyMs: 50, Body: []byte(`
function reportTransaction() {
  var amount = 0;
  for (var i = 0; i < 64; i = i + 1) { amount = amount + i; }
  navigator.sendBeacon('audit', 512);
  return amount;
}
var sent = reportTransaction();`)})

	b := browser.New(site, browser.DefaultProfile())
	b.RunSession()
	if len(b.Errors) > 0 {
		log.Fatal(b.Errors[0])
	}

	p := core.NewProfiler(b.M.Tr)
	pix, err := p.PixelSlice()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := p.SyscallSlice()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace: %d instructions\n", pix.Total)
	fmt.Printf("pixel-based slice:   %6.1f%% (%d instructions)\n", pix.Percent(), pix.SliceCount)
	fmt.Printf("syscall-based slice: %6.1f%% (%d instructions)\n", sys.Percent(), sys.SliceCount)

	missing, extra := 0, 0
	for i := 0; i < pix.Total; i++ {
		inP, inS := pix.InSlice.Get(i), sys.InSlice.Get(i)
		if inP && !inS {
			missing++
		}
		if inS && !inP {
			extra++
		}
	}
	fmt.Printf("pixel-slice records missing from syscall slice: %d (criteria inclusion)\n", missing)
	fmt.Printf("records only the syscall criteria capture:      %d (the bank transaction)\n", extra)
	if missing == 0 && extra > 0 {
		fmt.Println("=> the syscall slice subsumes the pixel slice and additionally")
		fmt.Println("   captures the network transaction the user cares about but never sees.")
	}
}
