// Deadcode: use the profiler as a dead-computation finder. It renders the
// Amazon desktop benchmark, slices it, and reports which functions burned
// the most instructions without contributing to the pixels — the
// "defer or delete" optimization list the paper's conclusion proposes.
package main

import (
	"fmt"
	"log"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/core"
	"webslice/internal/sites"
)

func main() {
	bench := sites.AmazonDesktop(sites.Options{Scale: 0.15})
	b := browser.New(bench.Site, bench.Profile)
	b.RunSession()
	if len(b.Errors) > 0 {
		log.Fatal(b.Errors[0])
	}
	p := core.NewProfiler(b.M.Tr)
	res, err := p.PixelSlice()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d instructions, %.1f%% in the pixel slice\n\n",
		bench.Name, res.Total, res.Percent())

	fmt.Println("Top wasted functions (instructions outside the slice):")
	for _, fw := range analysis.TopWasted(b.M.Tr, res, 15) {
		fmt.Printf("  %8d / %8d  [%s] %s\n", fw.Wasted, fw.Total, orNone(fw.Namespace), fw.Name)
	}

	fmt.Println("\nJavaScript functions compiled but never executed (defer candidates):")
	deferrable := 0
	for _, f := range b.JS.Funcs {
		if !f.Executed && f.SrcBytes() > 0 {
			deferrable += f.SrcBytes()
		}
	}
	u := analysis.UnusedBytes(b)
	fmt.Printf("  %d bytes of JS could be lazily compiled (%.0f%% of JS+CSS is unused overall)\n",
		deferrable, u.Percent())

	d := analysis.Categorize(b.M.Tr, res)
	fmt.Println("\nWhere the waste lives (paper Figure 5 categories):")
	for _, c := range analysis.Categories {
		fmt.Printf("  %-16s %5.1f%%\n", c, 100*d.Share[c])
	}
}

func orNone(ns string) string {
	if ns == "" {
		return "uncategorized"
	}
	return ns
}
