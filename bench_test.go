// Package webslice holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation. Each benchmark renders the
// corresponding workload on the simulated browser, runs the slicing
// profiler, reports the paper's metrics via b.ReportMetric, and logs the
// regenerated rows/series on the first iteration.
//
// The workload scale defaults to 0.25 of the calibrated benchmark size so a
// full `go test -bench=.` run stays laptop-friendly; set WEBSLICE_SCALE=1
// for the full-size runs used in EXPERIMENTS.md.
package webslice

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/experiments"
	"webslice/internal/sites"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

func benchScale() float64 {
	if v := os.Getenv("WEBSLICE_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

// BenchmarkTableI regenerates Table I: unused JS/CSS bytes for Amazon, Bing,
// and Google Maps in load and load+browse sessions.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExecuteTableI(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.TableI(rows).String())
			for _, r := range rows {
				name := strings.ReplaceAll(r.Name, " ", "")
				b.ReportMetric(r.Load.Percent(), name+"_load_unused_%")
				b.ReportMetric(r.LoadAndBrowse.Percent(), name+"_browse_unused_%")
			}
		}
	}
}

func benchTableIIOne(b *testing.B, mk func(sites.Options) sites.Benchmark, browse bool) {
	for i := 0; i < b.N; i++ {
		bench := mk(sites.Options{Scale: benchScale(), Browse: browse})
		r, err := experiments.Execute(bench)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Pixel.Percent(), "all_slice_%")
			b.ReportMetric(r.Pixel.ThreadPercent(browser.MainThread), "main_slice_%")
			b.ReportMetric(r.Pixel.ThreadPercent(browser.CompositorThread), "compositor_slice_%")
			b.ReportMetric(r.Pixel.ThreadPercent(browser.RasterThreadBase), "raster1_slice_%")
			b.ReportMetric(float64(r.Pixel.Total)/1e6, "Minstr")
		}
	}
}

// BenchmarkTableII_* regenerate the four Table II columns.
func BenchmarkTableII_AmazonDesktop(b *testing.B) { benchTableIIOne(b, sites.AmazonDesktop, false) }
func BenchmarkTableII_AmazonMobile(b *testing.B)  { benchTableIIOne(b, sites.AmazonMobile, false) }
func BenchmarkTableII_GoogleMaps(b *testing.B)    { benchTableIIOne(b, sites.GoogleMaps, false) }
func BenchmarkTableII_Bing(b *testing.B)          { benchTableIIOne(b, sites.Bing, true) }

// BenchmarkFigure2 regenerates the main-thread CPU-utilization timeline of
// the Amazon browsing session.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chart, err := experiments.Figure2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + chart.String())
		}
	}
}

// BenchmarkFigure4 regenerates the backward-pass slicing curves (all
// benchmarks, all-threads and main-thread series).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.ExecuteTableII(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range runs {
				b.Log("\n" + experiments.Figure4(r).String())
			}
		}
	}
}

// BenchmarkFigure5 regenerates the categorization of unnecessary
// computations.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.ExecuteTableII(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.Figure5(runs).String())
			for _, r := range runs {
				d := analysis.Categorize(r.Trace, r.Pixel)
				b.ReportMetric(100*d.Share["JavaScript"], "js_waste_%")
			}
		}
	}
}

// BenchmarkBingPartialSlice regenerates the §V-A experiment: slicing the
// Bing trace from the page-loaded point vs from the end of the session.
func BenchmarkBingPartialSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Execute(sites.Bing(sites.Options{Scale: benchScale(), Browse: true}))
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.ExecuteBingPartial(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.LoadOnlyPct, "load_only_%")
			b.ReportMetric(res.FullSessionPct, "full_session_%")
		}
	}
}

// BenchmarkCriteriaComparison is the pixel-vs-syscall criteria ablation.
// Both slices come out of one fused backward pass (ExecuteCriteria with
// syscalls enabled) instead of two independent trace walks.
func BenchmarkCriteriaComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExecuteCriteria(sites.AmazonDesktop(sites.Options{Scale: benchScale()}), true)
		if err != nil {
			b.Fatal(err)
		}
		c, err := experiments.ExecuteCriteriaComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if c.PixelOnly != 0 {
			b.Fatalf("syscall slice must contain the pixel slice; %d records missing", c.PixelOnly)
		}
		if i == 0 {
			b.ReportMetric(c.PixelPct, "pixel_%")
			b.ReportMetric(c.SyscallPct, "syscall_%")
		}
	}
}

// BenchmarkReproRunner measures the parallel experiment runner: the same
// Table II regeneration with a single worker vs a GOMAXPROCS-sized pool.
// On a multi-core machine the parallel series should approach
// serial/num_cores; results are verified byte-identical in
// internal/experiments regardless of pool size.
func BenchmarkReproRunner(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runs, err := experiments.ExecuteTableIIWith(experiments.Config{
					Scale:    benchScale(),
					Workers:  cfg.workers,
					Syscalls: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var render, forward, slice float64
					for _, r := range runs {
						render += r.Timing.RenderMs
						forward += r.Timing.ForwardMs
						slice += r.Timing.SliceMs
					}
					b.ReportMetric(render, "render_ms")
					b.ReportMetric(forward, "forward_ms")
					b.ReportMetric(slice, "slice_ms")
				}
			}
		})
	}
}

// BenchmarkEncodeV2 / BenchmarkEncodeV3 measure trace serialization in the
// flat v2 format vs the block-compressed v3 format; the decode pair below
// measures the reverse direction. Throughput (MB/s) is reported against the
// v2 byte size in all four so the numbers compare like-for-like, and the
// encode benchmarks report the achieved compression ratio.
func codecTrace(b *testing.B) (*trace.Trace, []byte, []byte) {
	b.Helper()
	bench := sites.AmazonDesktop(sites.Options{Scale: benchScale()})
	br := browser.New(bench.Site, bench.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		b.Fatal(br.Errors[0])
	}
	var v2, v3 bytes.Buffer
	if err := br.M.Tr.Write(&v2); err != nil {
		b.Fatal(err)
	}
	if err := br.M.Tr.WriteV3Blocks(&v3, trace.DefaultBlockRecs); err != nil {
		b.Fatal(err)
	}
	return br.M.Tr, v2.Bytes(), v3.Bytes()
}

func BenchmarkEncodeV2(b *testing.B) {
	tr, v2, _ := codecTrace(b)
	b.SetBytes(int64(len(v2)))
	b.ResetTimer()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeV3(b *testing.B) {
	tr, v2, v3 := codecTrace(b)
	b.SetBytes(int64(len(v2)))
	b.ResetTimer()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.WriteV3Blocks(&buf, trace.DefaultBlockRecs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(v2))/float64(len(v3)), "ratio")
}

func BenchmarkDecodeV2(b *testing.B) {
	_, v2, _ := codecTrace(b)
	b.SetBytes(int64(len(v2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(v2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV3(b *testing.B) {
	_, v2, v3 := codecTrace(b)
	b.SetBytes(int64(len(v2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := trace.OpenV3(v3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := br.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationControlDeps compares full slicing against
// data-dependence-only slicing (CDG disabled).
func BenchmarkAblationControlDeps(b *testing.B) {
	bench := sites.AmazonDesktop(sites.Options{Scale: benchScale()})
	br := browser.New(bench.Site, bench.Profile)
	br.RunSession()
	f, err := cfg.Build(br.M.Tr)
	if err != nil {
		b.Fatal(err)
	}
	deps := cdg.Compute(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := slicer.Slice(br.M.Tr, deps, slicer.PixelCriteria{}, slicer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		dataOnly, err := slicer.Slice(br.M.Tr, nil, slicer.PixelCriteria{}, slicer.Options{NoControlDeps: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(full.Percent(), "full_%")
			b.ReportMetric(dataOnly.Percent(), "data_only_%")
		}
	}
}

// BenchmarkAblationLiveMem compares the two live-memory-set implementations'
// slicer throughput.
func BenchmarkAblationLiveMem(b *testing.B) {
	bench := sites.Bing(sites.Options{Scale: benchScale(), Browse: true})
	br := browser.New(bench.Site, bench.Profile)
	br.RunSession()
	f, err := cfg.Build(br.M.Tr)
	if err != nil {
		b.Fatal(err)
	}
	deps := cdg.Compute(f)
	b.Run("WordSet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := slicer.Slice(br.M.Tr, deps, slicer.PixelCriteria{}, slicer.Options{Live: slicer.NewWordSet()}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(br.M.Tr.Len())/1e6, "Minstr")
	})
	b.Run("PageSet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := slicer.Slice(br.M.Tr, deps, slicer.PixelCriteria{}, slicer.Options{Live: slicer.NewPageSet()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationForwardReuse measures re-running the forward pass vs
// loading the control dependence graph from stable storage.
func BenchmarkAblationForwardReuse(b *testing.B) {
	bench := sites.AmazonMobile(sites.Options{Scale: benchScale()})
	br := browser.New(bench.Site, bench.Profile)
	br.RunSession()
	b.Run("Recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := cfg.Build(br.M.Tr)
			if err != nil {
				b.Fatal(err)
			}
			cdg.Compute(f)
		}
	})
	f, _ := cfg.Build(br.M.Tr)
	deps := cdg.Compute(f)
	b.Run("SliceOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := slicer.Slice(br.M.Tr, deps, slicer.PixelCriteria{}, slicer.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
